package remote

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// This file pins the v2 batched wire: mixed-version interop, the want
// bitmap, cancellation (including the eager hedge-loser cancel), and the
// fault path's steady-state allocation budgets.

func serverCancels(s *Server) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Cancels
}

func serverGets(s *Server) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Gets
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A client pinned to the v1 wire must work against a v2 server unchanged:
// the server still speaks TGetPage/TPageData to peers that ask with them.
func TestWireV1ClientAgainstV2Server(t *testing.T) {
	dir, srv := testCluster(t, 4)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyPipelined, WireV1: true})
	buf := make([]byte, units.PageSize)
	for p := uint64(0); p < 4; p++ {
		if err := c.Read(buf, p*units.PageSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, pagePattern(p)) {
			t.Fatalf("page %d mismatch over the v1 wire", p)
		}
	}
	st := c.Stats()
	if st.Faults != 4 {
		t.Fatalf("Faults = %d, want 4", st.Faults)
	}
	if st.Cancels != 0 {
		t.Fatalf("a v1-pinned client sent %d cancels; the v1 wire has none", st.Cancels)
	}
	if got := serverGets(srv); got != 4 {
		t.Fatalf("server Gets = %d, want 4", got)
	}
}

// registerRaw takes out a directory registration on behalf of a fake
// server, the way a real one would on the wire.
func registerRaw(t *testing.T, dirAddr, srvAddr string, pages []uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", dirAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	w := proto.NewWriter(conn)
	r := proto.NewReader(conn)
	if err := w.SendRegister(proto.Register{Addr: srvAddr, Epoch: 1, Pages: pages}); err != nil {
		t.Fatal(err)
	}
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != proto.TAck {
		t.Fatalf("register answered %v, want TAck", f.Type)
	}
}

// serveV1Only emulates a page server that predates the v2 wire: it serves
// TGetPage and severs the connection on any tag it does not know, exactly
// as the old framing layer did.
func serveV1Only(conn net.Conn, v2Frames *atomic.Int64) {
	defer conn.Close()
	r := proto.NewReader(conn)
	w := proto.NewWriter(conn)
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		if f.Type > proto.TWrongShard {
			v2Frames.Add(1)
			return
		}
		if f.Type != proto.TGetPage {
			return
		}
		req, err := proto.DecodeGetPage(f.Payload)
		if err != nil {
			return
		}
		if err := w.SendPageData(proto.PageData{
			Page: req.Page, Offset: 0, Flags: proto.FlagFirst, Data: pagePattern(req.Page),
		}); err != nil {
			return
		}
		if err := w.SendPageData(proto.PageData{Page: req.Page, Flags: proto.FlagLast}); err != nil {
			return
		}
	}
}

// The other half of the rollout contract: a default (v2) client against a
// v1-only server fails typed instead of wedging, and the same client
// pinned to WireV1 works. This is why servers upgrade before clients.
func TestV2ClientAgainstV1OnlyServer(t *testing.T) {
	dir, err := ListenDirectory("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dir.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var v2Frames atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go serveV1Only(conn, &v2Frames)
		}
	}()
	registerRaw(t, dir.Addr(), ln.Addr().String(), []uint64{0})

	cfg := fastRetry(ClientConfig{Policy: proto.PolicyEager})
	cfg.Directory = dir.Addr()
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	buf := make([]byte, units.PageSize)
	if err := c.Read(buf, 0); !errors.Is(err, ErrPageUnavailable) {
		t.Fatalf("v2 client against a v1-only server: err = %v, want ErrPageUnavailable", err)
	}
	if v2Frames.Load() == 0 {
		t.Fatal("the stub never saw a v2 frame; the test exercised nothing")
	}

	cfgV1 := fastRetry(ClientConfig{Policy: proto.PolicyEager, WireV1: true})
	cfgV1.Directory = dir.Addr()
	cv1, err := Dial(cfgV1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cv1.Close() })
	if err := cv1.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pagePattern(0)) {
		t.Fatal("page mismatch from the v1-only server")
	}
}

// dialRaw opens a raw framed connection to a server.
func dialRaw(t *testing.T, addr string) (net.Conn, *proto.Writer, *proto.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, proto.NewWriter(conn), proto.NewReader(conn)
}

// readBatches reads TSubpageBatch frames for reqID until FlagLast or a
// read timeout, returning the batches seen and whether FlagLast arrived.
func readBatches(t *testing.T, conn net.Conn, r *proto.Reader, reqID uint64, perRead time.Duration) (batches []proto.SubpageBatch, last bool) {
	t.Helper()
	for {
		_ = conn.SetReadDeadline(time.Now().Add(perRead))
		f, err := r.Next()
		if err != nil {
			return batches, false // timeout or close: the stream went quiet
		}
		if f.Type == proto.TError {
			t.Fatalf("server error: %s", proto.DecodeError(f.Payload).Text)
		}
		if f.Type != proto.TSubpageBatch {
			t.Fatalf("unexpected %v on the data stream", f.Type)
		}
		b, err := proto.DecodeSubpageBatch(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if b.ReqID != reqID {
			continue
		}
		// Copy: the reader reuses its payload buffer across frames.
		raw := make([]byte, len(f.Payload))
		copy(raw, f.Payload)
		b, _ = proto.DecodeSubpageBatch(raw)
		batches = append(batches, b)
		if b.Flags&proto.FlagLast != 0 {
			return batches, true
		}
	}
}

// The want bitmap trims a v2 reply to the blocks the client misses; the
// faulted block is always included.
func TestServerWantBitmapTrimsReply(t *testing.T) {
	_, srv := testCluster(t, 1)
	conn, w, r := dialRaw(t, srv.Addr())

	// Want exactly the faulted 1024-byte subpage (MinSubpage blocks 4-7):
	// the whole reply is one FlagFirst|FlagLast batch of 1024 bytes.
	if err := w.SendGetPageV2(proto.GetPageV2{
		ReqID: 1, Page: 0, FaultOff: 1024, SubpageSize: 1024,
		Want: 0xF0, Policy: proto.PolicyEager,
	}); err != nil {
		t.Fatal(err)
	}
	batches, last := readBatches(t, conn, r, 1, 2*time.Second)
	if !last {
		t.Fatal("stream never completed")
	}
	if len(batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(batches))
	}
	b := batches[0]
	if b.Flags&proto.FlagFirst == 0 {
		t.Fatal("first batch lacks FlagFirst")
	}
	total := 0
	want := pagePattern(0)
	for i := 0; i < b.Runs(); i++ {
		off, data := b.Run(i)
		if !bytes.Equal(data, want[off:off+len(data)]) {
			t.Fatalf("run at %d carries wrong bytes", off)
		}
		total += len(data)
	}
	if total != 1024 {
		t.Fatalf("reply carried %d bytes, want exactly the 1024 asked for", total)
	}

	// Want two distant blocks (0 and 31), faulting block 0: the faulted
	// message ships block 0 under FlagFirst, the remainder only block 31.
	if err := w.SendGetPageV2(proto.GetPageV2{
		ReqID: 2, Page: 0, FaultOff: 0, SubpageSize: 1024,
		Want: 1 | 1<<31, Policy: proto.PolicyEager,
	}); err != nil {
		t.Fatal(err)
	}
	batches, last = readBatches(t, conn, r, 2, 2*time.Second)
	if !last {
		t.Fatal("stream never completed")
	}
	if len(batches) != 2 {
		t.Fatalf("got %d batches, want 2", len(batches))
	}
	off0, data0 := batches[0].Run(0)
	if batches[0].Runs() != 1 || off0 != 0 || len(data0) != units.MinSubpage {
		t.Fatalf("first batch = %d runs, off %d, %dB; want one %dB run at 0",
			batches[0].Runs(), off0, len(data0), units.MinSubpage)
	}
	off1, data1 := batches[1].Run(0)
	if batches[1].Runs() != 1 || off1 != units.PageSize-units.MinSubpage || len(data1) != units.MinSubpage {
		t.Fatalf("last batch = %d runs, off %d, %dB; want one %dB run at %d",
			batches[1].Runs(), off1, len(data1), units.MinSubpage, units.PageSize-units.MinSubpage)
	}
}

// collectRuns flattens a batch stream into total bytes and a valid bitmap,
// verifying every run's data against the page's pattern.
func collectRuns(t *testing.T, batches []proto.SubpageBatch, page uint64) (total int, got uint32) {
	t.Helper()
	want := pagePattern(page)
	for _, b := range batches {
		for i := 0; i < b.Runs(); i++ {
			off, data := b.Run(i)
			if !bytes.Equal(data, want[off:off+len(data)]) {
				t.Fatalf("run at %d carries wrong bytes", off)
			}
			total += len(data)
			for blk := off / units.MinSubpage; blk < (off+len(data))/units.MinSubpage; blk++ {
				got |= 1 << blk
			}
		}
	}
	return total, got
}

// Regression: the want bitmap is a request, not a filter. A client may ask
// for blocks the policy's transfer plan never covers (a lazy fault carrying
// prefetch predictions is exactly that), and the server must ship every
// requested block it stores — previously `rest &= plan coverage` silently
// dropped want bits outside the plan and the client waited forever for
// blocks that never came.
func TestServerWantBeyondPlanIsHonored(t *testing.T) {
	_, srv := testCluster(t, 1)
	conn, w, r := dialRaw(t, srv.Addr())

	// Lazy plans only the faulted 1024B subpage (blocks 4-7). Want adds
	// blocks 12-15 and 31, which no lazy plan message covers.
	const wantBits = 0xF0 | 0xF000 | 1<<31
	if err := w.SendGetPageV2(proto.GetPageV2{
		ReqID: 11, Page: 0, FaultOff: 1024, SubpageSize: 1024,
		Want: wantBits, Policy: proto.PolicyLazy,
	}); err != nil {
		t.Fatal(err)
	}
	batches, last := readBatches(t, conn, r, 11, 2*time.Second)
	if !last {
		t.Fatal("stream never completed")
	}
	total, got := collectRuns(t, batches, 0)
	if got != wantBits {
		t.Fatalf("reply covered bitmap %#x, want %#x: requested blocks beyond the plan were dropped", got, wantBits)
	}
	if total != 9*units.MinSubpage {
		t.Fatalf("reply carried %d bytes, want %d", total, 9*units.MinSubpage)
	}

	// The emulated wire must honor the same contract: extra want bits ride
	// the final batch instead of vanishing.
	srv.SetWireMbps(1000)
	if err := w.SendGetPageV2(proto.GetPageV2{
		ReqID: 12, Page: 0, FaultOff: 1024, SubpageSize: 1024,
		Want: wantBits, Policy: proto.PolicyLazy,
	}); err != nil {
		t.Fatal(err)
	}
	batches, last = readBatches(t, conn, r, 12, 2*time.Second)
	if !last {
		t.Fatal("emulated stream never completed")
	}
	if _, got := collectRuns(t, batches, 0); got != wantBits {
		t.Fatalf("emulated reply covered bitmap %#x, want %#x", got, wantBits)
	}
}

// A TCancel between batches stops an emulated-wire stream mid-page: the
// server spends no more serialization time on a reply nobody wants.
func TestCancelStopsEmulatedStream(t *testing.T) {
	_, srv := testCluster(t, 1)
	srv.SetWireMbps(5) // 256B per batch costs ~410us: plenty of room to cancel
	conn, w, r := dialRaw(t, srv.Addr())
	if err := w.SendGetPageV2(proto.GetPageV2{
		ReqID: 7, Page: 0, FaultOff: 0, SubpageSize: 256,
		Policy: proto.PolicyPipelined,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.SendCancel(proto.Cancel{ReqID: 7}); err != nil {
		t.Fatal(err)
	}
	batches, last := readBatches(t, conn, r, 7, 300*time.Millisecond)
	if last {
		t.Fatal("stream ran to completion despite the cancel")
	}
	if len(batches) == 0 {
		t.Fatal("no batch arrived; the request itself failed")
	}
	total := 0
	for _, b := range batches {
		for i := 0; i < b.Runs(); i++ {
			_, data := b.Run(i)
			total += len(data)
		}
	}
	if total >= units.PageSize {
		t.Fatalf("received %d bytes, want less than a full page", total)
	}
	waitFor(t, 2*time.Second, func() bool { return serverCancels(srv) >= 1 },
		"server to count the cancel")
}

// The lost-hedge fix: when the hedged replica wins, the primary's stream
// is withdrawn on the wire, and the loser can neither skew the latency
// statistics nor double-complete the attempt.
func TestHedgeLoserCanceledEagerly(t *testing.T) {
	dir, srvA, srvB := replicatedCluster(t, 1)
	srvA.SetWireMbps(1) // ~8.2ms per 1KB message: the 5ms hedge always fires
	cfg := fastRetry(ClientConfig{
		Policy:      proto.PolicyPipelined,
		SubpageSize: 1024,
		Hedge:       5 * time.Millisecond,
	})
	cfg.RequestTimeout = 5 * time.Second
	c := testClient(t, dir, cfg)

	buf := make([]byte, units.PageSize)
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pagePattern(0)) {
		t.Fatal("page mismatch")
	}
	st := c.Stats()
	if st.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", st.Hedges)
	}
	if st.Cancels < 1 {
		t.Fatal("the losing stream was never canceled")
	}
	// One fault, one first-subpage sample, one completion sample: the
	// loser's late batches must not have signaled anything.
	if st.Faults != 1 || st.SubpageLat.N() != 1 || st.FullLat.N() != 1 {
		t.Fatalf("Faults=%d SubpageLat.N=%d FullLat.N=%d, want 1/1/1 (loser skewed the stats)",
			st.Faults, st.SubpageLat.N(), st.FullLat.N())
	}
	waitFor(t, 2*time.Second, func() bool { return serverCancels(srvA) >= 1 },
		"the slow primary to observe the cancel")
	_ = srvB
}

// Server.Store must not allocate in steady state: buffers recycle through
// the page pool (the Store hot-path bugfix).
func TestServerStoreAllocs(t *testing.T) {
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	data := pagePattern(3)
	srv.Store(0, data)
	if n := testing.AllocsPerRun(200, func() { srv.Store(0, data) }); n > 0.5 {
		t.Fatalf("Store allocates %.1f objects per call in steady state, want 0", n)
	}
}

// nopConn is a sink net.Conn for exercising the reply path off the wire.
type nopConn struct{}

func (nopConn) Read(b []byte) (int, error)       { return 0, errors.New("nopConn: no reads") }
func (nopConn) Write(b []byte) (int, error)      { return len(b), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// The v2 reply path reuses per-connection scratch: a whole-page reply is
// bounded by the transfer plan's own small allocations, with nothing per
// batch or per run.
func TestServerReplyPathAllocs(t *testing.T) {
	srv, err := ListenServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	srv.Store(0, pagePattern(0))
	st := &connState{
		conn:     nopConn{},
		live:     make(map[uint64]bool),
		canceled: make(map[uint64]bool),
	}
	w := proto.NewWriter(nopConn{})
	slp := newSleeper()
	defer slp.Close()
	req := proto.GetPageV2{ReqID: 1, Page: 0, FaultOff: 1024, SubpageSize: 1024, Policy: proto.PolicyEager}
	if err := srv.sendPageV2(st, w, req, slp); err != nil {
		t.Fatal(err)
	}
	// Budget: policy lookup and Plan build small slices, and the cancel
	// poll is a closure; the framing, run tables and scatter-gather lists
	// themselves must stay allocation-free.
	const budget = 8.0
	if n := testing.AllocsPerRun(200, func() {
		if err := srv.sendPageV2(st, w, req, slp); err != nil {
			t.Fatal(err)
		}
	}); n > budget {
		t.Fatalf("v2 reply path allocates %.1f objects per page, budget %v", n, budget)
	}
}

// A stale batch (canceled hedge, timed-out attempt) applies bytes without
// allocating and without touching the attempt state machine.
func TestStaleBatchAppliesWithoutSignaling(t *testing.T) {
	dir, _ := testCluster(t, 1)
	c := testClient(t, dir, ClientConfig{Policy: proto.PolicyEager})
	buf := make([]byte, units.PageSize)
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}

	var fb bytes.Buffer
	w := proto.NewWriter(&fb)
	if err := w.SendSubpageBatch(999, 0, proto.FlagFirst|proto.FlagLast,
		[]proto.SubpageRun{{Off: 0, Data: pagePattern(0)[:512]}}); err != nil {
		t.Fatal(err)
	}
	f, err := proto.NewReader(&fb).Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := proto.DecodeSubpageBatch(f.Payload)
	if err != nil {
		t.Fatal(err)
	}

	before := c.Stats()
	if n := testing.AllocsPerRun(200, func() { c.applyBatch("203.0.113.1:1", b) }); n > 0.5 {
		t.Fatalf("stale applyBatch allocates %.1f objects per frame, want 0", n)
	}
	after := c.Stats()
	if after.SubpageLat.N() != before.SubpageLat.N() || after.FullLat.N() != before.FullLat.N() {
		t.Fatal("a stale batch moved the latency statistics")
	}
	if after.Cancels != before.Cancels {
		t.Fatal("a stale batch sent cancels")
	}
	if err := c.Read(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pagePattern(0)) {
		t.Fatal("stale batches corrupted the cached page")
	}
}

// TestBatchedWireSmoke is the bounded batched-path smoke run under -race
// by make ci: v2 and v1-pinned clients hammer the same replicated servers
// concurrently, with hedging on and a cache small enough to churn the
// page-buffer pool.
func TestBatchedWireSmoke(t *testing.T) {
	dir, _, _ := replicatedCluster(t, 16)
	mk := func(v1 bool) *Client {
		cfg := fastRetry(ClientConfig{
			Policy:      proto.PolicyPipelined,
			SubpageSize: 512,
			CachePages:  8,
			Hedge:       2 * time.Millisecond,
			WireV1:      v1,
		})
		cfg.RequestTimeout = 5 * time.Second
		return testClient(t, dir, cfg)
	}
	clients := []*Client{mk(false), mk(false), mk(true)}
	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	for gi, c := range clients {
		wg.Add(1)
		go func(gi int, c *Client) {
			defer wg.Done()
			buf := make([]byte, units.PageSize)
			for i := 0; i < 40; i++ {
				page := uint64((gi*7 + i*3) % 16)
				if err := c.Read(buf, page*units.PageSize); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, pagePattern(page)) {
					errs <- errors.New("page mismatch under concurrency")
					return
				}
			}
		}(gi, c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
