// Package rng provides a small, fast, deterministic pseudo-random number
// generator for trace generation and simulation.
//
// Trace generators must be reproducible across runs and Go versions so that
// experiment outputs are stable; math/rand's default source is seedable but
// slower and its stream is not guaranteed stable across releases for all
// helpers. We use splitmix64 for seeding and xoshiro256** for the stream,
// both with published reference outputs.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, as recommended by
// the xoshiro authors. Two generators with the same seed produce identical
// streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	return &r
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with success
// probability p (mean 1/p - 1, support {0,1,2,...}). Used for run lengths in
// trace generation. p must be in (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<24 { // defensive bound; p is configuration
			return n
		}
	}
	return n
}

// Perm fills out with a random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Zipf samples from a bounded zipf-like distribution over [0, n) with
// exponent s > 0 using inverse-CDF on a precomputed table. For hot/cold page
// popularity in synthetic traces. Construct once per distribution.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws an index in [0, n) with zipf weights.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
