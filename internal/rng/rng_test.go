package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		// Expect 10000 each; allow 10% slack.
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d: %d draws, want ~10000", i, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	const p, trials = 0.25, 50000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / trials
	want := 1/p - 1 // 3.0
	if mean < want*0.9 || mean > want*1.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricPEqualsOne(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1.0); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	out := make([]int, 64)
	r.Perm(out)
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("zipf not skewed at tail: counts[0]=%d counts[99]=%d", counts[0], counts[99])
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0xdeadbeefcafebabe, 2, 1, 0xbd5b7ddf95fd757c},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}
