package sim

import (
	"fmt"
	"sort"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/gms"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// FailureEvent schedules the failure of one idle (donor) node in a
// simulated cluster: node Node dies at simulated time At — its donated
// pages vanish, so refaults on them fall through to disk — and, when
// RejoinAt > At, rejoins with empty memory at RejoinAt. RejoinAt <= At
// means the node never comes back. The schedule is part of the simulation
// input, so runs are deterministic: same config, same failures, same
// output, at any worker-pool width.
type FailureEvent struct {
	Node     int
	At       units.Ticks
	RejoinAt units.Ticks
}

// ClusterConfig describes a multi-node run: several active workstations,
// each running its own workload in reduced local memory, sharing the idle
// nodes' memory as one global cache (the full GMS scenario the paper's
// single-faulting-node experiments sit inside).
type ClusterConfig struct {
	// Apps run one per active node, each in a disjoint slice of the
	// global page space.
	Apps []*trace.App

	// MemFraction sizes each active node's local memory relative to its
	// own workload footprint.
	MemFraction float64

	// Policy and SubpageSize apply to every node.
	Policy      core.Policy
	SubpageSize int

	// IdleNodes donate memory; GlobalPagesPerIdle is each one's
	// capacity in pages (0 = unbounded, the paper's warm-cache
	// assumption). IdleNodes <= 0 runs the all-disk baseline: no node
	// donates memory and every refault misses the (empty) global cache.
	IdleNodes          int
	GlobalPagesPerIdle int

	// UseEpoch selects GMS's epoch-based weighted placement instead of
	// least-loaded placement.
	UseEpoch bool

	// ColdStart leaves the global cache empty.
	ColdStart bool

	// NodeFailures schedules idle-node deaths (and optional rejoins)
	// against the simulated clock. Events at time 0 apply after warm-up
	// but before the first reference, so failing every node at 0 is
	// exactly the all-disk baseline. Requires IdleNodes > 0. Events are
	// applied at batch boundaries (the interleaving granularity), which is
	// also what keeps them deterministic.
	NodeFailures []FailureEvent

	// BatchRefs is the interleaving granularity in references
	// (default 4096).
	BatchRefs int
}

// ClusterResult aggregates a multi-node run.
type ClusterResult struct {
	Nodes []*Result

	// Global-cache behaviour.
	GlobalHits   int64
	GlobalMisses int64
	Stores       int64
	Discards     int64
	Epochs       int64
	// DroppedPages counts donated pages lost to scheduled node failures
	// (distinct from Discards: a crash is not a replacement decision).
	DroppedPages int64
}

// TotalRuntime returns the slowest node's runtime (the cluster makespan).
func (cr *ClusterResult) TotalRuntime() units.Ticks {
	var maxRt units.Ticks
	for _, r := range cr.Nodes {
		if r.Runtime > maxRt {
			maxRt = r.Runtime
		}
	}
	return maxRt
}

// DiskFaults sums disk faults across nodes: the cost of global-memory
// pressure.
func (cr *ClusterResult) DiskFaults() int64 {
	var n int64
	for _, r := range cr.Nodes {
		n += r.DiskFaults
	}
	return n
}

// nodeSpacing separates the nodes' address spaces.
const nodeSpacing = uint64(1) << 40

// RunCluster executes every node's workload against one shared global
// cache, interleaving nodes in simulated-time order so their evictions
// and fetches contend realistically.
func RunCluster(cfg ClusterConfig) *ClusterResult {
	if len(cfg.Apps) == 0 {
		panic("sim: RunCluster needs at least one app")
	}
	if cfg.BatchRefs <= 0 {
		cfg.BatchRefs = 4096
	}
	if len(cfg.NodeFailures) > 0 && cfg.IdleNodes <= 0 {
		panic("sim: NodeFailures needs idle nodes to fail")
	}
	for _, ev := range cfg.NodeFailures {
		if ev.Node < 0 || ev.Node >= cfg.IdleNodes {
			panic(fmt.Sprintf("sim: FailureEvent node %d out of range [0,%d)", ev.Node, cfg.IdleNodes))
		}
	}
	gcfg := gms.Config{Nodes: cfg.IdleNodes, GlobalPagesPerNode: cfg.GlobalPagesPerIdle}
	var shared GlobalCache
	var base *gms.Cluster
	var epochs *int64
	var nog *noGlobal
	switch {
	case cfg.IdleNodes <= 0:
		nog = &noGlobal{}
		shared = nog
	case cfg.UseEpoch:
		ec := gms.NewEpochCluster(gcfg, gms.DefaultEpochConfig())
		shared, base = ec, ec.Cluster
		epochs = &ec.Epoch.Epochs
	default:
		c := gms.NewCluster(gcfg)
		shared, base = c, c
	}

	// Build one runner per node, its addresses offset into a private
	// slice of the page space.
	type node struct {
		r      *runner
		rd     trace.Reader
		buf    []trace.Ref
		filled int
		pos    int
		done   bool
	}
	nodes := make([]*node, len(cfg.Apps))
	for i, app := range cfg.Apps {
		i, app := i, app
		delta := uint64(i+1) * nodeSpacing
		src := &TraceSource{
			Name:      fmt.Sprintf("%s@node%d", app.Name, i),
			Pages:     app.TotalPages,
			NewReader: func() trace.Reader { return trace.Offset(app.NewReader(), delta) },
			// The node's footprint is the app's memoized footprint shifted
			// into its address slice (nodeSpacing is page-aligned), sparing
			// one full trace scan per node at warm-up.
			Touched: func() []uint64 {
				base := trace.TouchedPages(app)
				out := make([]uint64, len(base))
				for j, p := range base {
					out[j] = p + delta/units.PageSize
				}
				return out
			},
		}
		rcfg := Config{
			Source:      src,
			MemFraction: cfg.MemFraction,
			Policy:      cfg.Policy,
			SubpageSize: cfg.SubpageSize,
			Global:      shared,
		}
		nr := newRunner(rcfg)
		nodes[i] = &node{
			r:   nr,
			rd:  src.NewReader(),
			buf: make([]trace.Ref, cfg.BatchRefs),
		}
	}

	// Warm the shared cache with every node's pages unless cold (or
	// there is no cache to warm).
	if !cfg.ColdStart && base != nil {
		for _, n := range nodes {
			base.Warm(n.r.pagesTouched())
		}
	}

	// Expand the failure schedule into a time-ordered action list. Ties
	// break fail-before-rejoin, then by node index, so the application
	// order is fully determined by the config.
	type liveAction struct {
		at     units.Ticks
		rejoin bool
		node   int
	}
	var actions []liveAction
	for _, ev := range cfg.NodeFailures {
		actions = append(actions, liveAction{at: ev.At, node: ev.Node})
		if ev.RejoinAt > ev.At {
			actions = append(actions, liveAction{at: ev.RejoinAt, rejoin: true, node: ev.Node})
		}
	}
	sort.Slice(actions, func(i, j int) bool {
		a, b := actions[i], actions[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.rejoin != b.rejoin {
			return !a.rejoin
		}
		return a.node < b.node
	})
	nextAction := 0

	// Interleave: always advance the node with the smallest clock.
	for {
		var next *node
		for _, n := range nodes {
			if n.done {
				continue
			}
			if next == nil || n.r.now < next.r.now {
				next = n
			}
		}
		if next == nil {
			break
		}
		// Apply every failure/rejoin due by the global clock (= the
		// chosen node's time, the minimum over runners). Actions beyond
		// the makespan never fire.
		for nextAction < len(actions) && actions[nextAction].at <= next.r.now {
			act := actions[nextAction]
			nextAction++
			if act.rejoin {
				base.ReviveNode(gms.NodeID(act.node))
			} else {
				base.FailNode(gms.NodeID(act.node))
			}
		}
		// Run one batch of references on the chosen node.
		if next.pos >= next.filled {
			next.filled = next.rd.Read(next.buf)
			next.pos = 0
			if next.filled == 0 {
				next.done = true
				continue
			}
		}
		for next.pos < next.filled {
			next.r.step(next.buf[next.pos])
			next.pos++
		}
	}

	res := &ClusterResult{}
	for _, n := range nodes {
		n.r.finishRun()
		res.Nodes = append(res.Nodes, n.r.res)
	}
	if base != nil {
		res.GlobalHits = base.Hits
		res.GlobalMisses = base.Misses
		res.Stores = base.Stores
		res.Discards = base.Discards
		res.DroppedPages = base.DroppedPages
	} else {
		res.GlobalMisses = nog.misses
	}
	if epochs != nil {
		res.Epochs = *epochs
	}
	return res
}

// noGlobal is the all-disk baseline's stand-in for network memory: with no
// idle nodes there is nothing to fetch from or store to, so every refault
// falls through to disk and every eviction is simply lost.
type noGlobal struct{ misses int64 }

func (g *noGlobal) Fetch(memmodel.PageID) (gms.NodeID, bool) { g.misses++; return 0, false }

func (g *noGlobal) Store(memmodel.PageID) gms.NodeID { return 0 }

func (g *noGlobal) Lookup(memmodel.PageID) (gms.NodeID, bool) { return 0, false }
