package sim

import (
	"testing"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/trace"
)

func TestClusterSingleNodeMatchesStandalone(t *testing.T) {
	// One active node with unbounded global memory behaves like a
	// standalone warm-cache run (fault counts identical; runtimes equal
	// because nothing else contends).
	app := trace.Gdb(0.5)
	solo := Run(Config{App: app, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024})
	cluster := RunCluster(ClusterConfig{
		Apps:        []*trace.App{app},
		MemFraction: 0.5,
		Policy:      core.Eager{},
		SubpageSize: 1024,
		IdleNodes:   4,
	})
	if len(cluster.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(cluster.Nodes))
	}
	n := cluster.Nodes[0]
	if n.Faults != solo.Faults || n.Runtime != solo.Runtime {
		t.Fatalf("cluster node (faults=%d rt=%d) differs from standalone (faults=%d rt=%d)",
			n.Faults, n.Runtime, solo.Faults, solo.Runtime)
	}
}

func TestClusterNodesShareGlobalMemory(t *testing.T) {
	apps := []*trace.App{trace.Gdb(0.5), trace.Gdb(0.5)}
	res := RunCluster(ClusterConfig{
		Apps:        apps,
		MemFraction: 0.5,
		Policy:      core.Eager{},
		SubpageSize: 1024,
		IdleNodes:   2,
	})
	if len(res.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(res.Nodes))
	}
	for i, n := range res.Nodes {
		if n.Faults == 0 {
			t.Errorf("node %d took no faults", i)
		}
		if n.DiskFaults != 0 {
			t.Errorf("node %d hit disk despite unbounded global memory", i)
		}
	}
	if res.GlobalHits == 0 || res.Stores == 0 {
		t.Fatalf("no shared-cache traffic: %+v", res)
	}
	// Address spaces are disjoint: both nodes fault their own pages.
	if res.Nodes[0].Faults != res.Nodes[1].Faults {
		t.Errorf("identical workloads should fault identically: %d vs %d",
			res.Nodes[0].Faults, res.Nodes[1].Faults)
	}
}

func TestClusterPressureCausesDiskFaults(t *testing.T) {
	// Two active nodes with a global cache too small for both working
	// sets: discards push refaults to disk, unlike the unbounded case.
	apps := []*trace.App{trace.Gdb(1.0), trace.Gdb(1.0)}
	roomy := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.25, Policy: core.Eager{}, SubpageSize: 1024,
		IdleNodes: 2,
	})
	tight := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.25, Policy: core.Eager{}, SubpageSize: 1024,
		IdleNodes: 2, GlobalPagesPerIdle: 20,
	})
	if roomy.DiskFaults() != 0 {
		t.Fatalf("unbounded global memory should avoid disk, got %d", roomy.DiskFaults())
	}
	if tight.DiskFaults() == 0 {
		t.Fatal("a tight global cache should push faults to disk")
	}
	if tight.Discards == 0 {
		t.Fatal("a tight global cache should discard pages")
	}
	if tight.TotalRuntime() <= roomy.TotalRuntime() {
		t.Fatal("global-memory pressure should slow the cluster down")
	}
}

func TestClusterEpochPlacement(t *testing.T) {
	apps := []*trace.App{trace.Gdb(1.0), trace.Modula3(0.05)}
	res := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024,
		IdleNodes: 3, GlobalPagesPerIdle: 200, UseEpoch: true,
	})
	if res.Epochs == 0 {
		t.Fatal("epoch manager never advanced")
	}
	for i, n := range res.Nodes {
		if n.Faults == 0 {
			t.Errorf("node %d idle", i)
		}
	}
}

func TestClusterColdStart(t *testing.T) {
	res := RunCluster(ClusterConfig{
		Apps:        []*trace.App{trace.Gdb(0.5)},
		MemFraction: 1,
		Policy:      core.Eager{},
		SubpageSize: 1024,
		IdleNodes:   1,
		ColdStart:   true,
	})
	n := res.Nodes[0]
	// Cold start: first touches come from disk; at full memory there are
	// no evictions so nothing ever enters global memory.
	if n.DiskFaults != n.Faults {
		t.Fatalf("cold start at full-mem: %d disk faults of %d", n.DiskFaults, n.Faults)
	}
}

func TestClusterSubpagesStillWin(t *testing.T) {
	// The paper's result survives multiprogramming: eager beats full
	// pages for every node of a shared cluster.
	apps := []*trace.App{trace.Gdb(1.0), trace.Gdb(1.0)}
	full := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.5, Policy: core.FullPage{}, SubpageSize: 8192,
		IdleNodes: 2,
	})
	eager := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024,
		IdleNodes: 2,
	})
	for i := range eager.Nodes {
		if eager.Nodes[i].Runtime >= full.Nodes[i].Runtime {
			t.Errorf("node %d: eager (%d) should beat fullpage (%d)",
				i, eager.Nodes[i].Runtime, full.Nodes[i].Runtime)
		}
	}
}

func TestClusterNoIdleNodesAllDisk(t *testing.T) {
	// Zero idle nodes is the all-disk baseline: no global cache exists,
	// so every fault goes to disk and the run is slower than with donors.
	apps := []*trace.App{trace.Gdb(0.5)}
	noIdle := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024,
		IdleNodes: 0,
	})
	donated := RunCluster(ClusterConfig{
		Apps: apps, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024,
		IdleNodes: 2,
	})
	if noIdle.GlobalHits != 0 || noIdle.Stores != 0 {
		t.Fatalf("no-idle run touched a global cache: %+v", noIdle)
	}
	if noIdle.GlobalMisses == 0 {
		t.Fatal("no-idle run should still count global misses")
	}
	n := noIdle.Nodes[0]
	if n.DiskFaults != n.Faults {
		t.Fatalf("all faults should hit disk: %d disk of %d", n.DiskFaults, n.Faults)
	}
	if noIdle.TotalRuntime() <= donated.TotalRuntime() {
		t.Fatalf("all-disk baseline (%d) should be slower than network memory (%d)",
			noIdle.TotalRuntime(), donated.TotalRuntime())
	}
}

func TestRunClusterPanicsWithoutApps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunCluster with no apps should panic")
		}
	}()
	RunCluster(ClusterConfig{})
}

func TestTraceSourceRuns(t *testing.T) {
	// A custom source replays exactly like its backing app.
	app := trace.Gdb(0.5)
	src := &TraceSource{
		Name:      "custom",
		Pages:     app.TotalPages,
		NewReader: app.NewReader,
	}
	fromSrc := Run(Config{Source: src, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024})
	fromApp := Run(Config{App: app, MemFraction: 0.5, Policy: core.Eager{}, SubpageSize: 1024})
	if fromSrc.Faults != fromApp.Faults || fromSrc.Runtime != fromApp.Runtime {
		t.Fatalf("source run differs from app run: %v vs %v", fromSrc, fromApp)
	}
	if fromSrc.AppName != "custom" {
		t.Fatalf("AppName = %q", fromSrc.AppName)
	}
}

func TestOffsetReaderDisjointSpaces(t *testing.T) {
	app := trace.Gdb(0.2)
	r := trace.Offset(app.NewReader(), nodeSpacing)
	buf := make([]trace.Ref, 1024)
	for {
		n := r.Read(buf)
		if n == 0 {
			break
		}
		for _, ref := range buf[:n] {
			if ref.Addr < nodeSpacing {
				t.Fatalf("address %#x below node base", ref.Addr)
			}
		}
	}
}
