package sim

import (
	"reflect"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func failureBaseConfig() ClusterConfig {
	return ClusterConfig{
		Apps:        []*trace.App{trace.Gdb(0.25), trace.Gdb(0.25)},
		MemFraction: 0.5,
		Policy:      core.Eager{},
		SubpageSize: 1024,
		IdleNodes:   2,
		UseEpoch:    true,
	}
}

func TestAllFailuresAtZeroMatchAllDiskBaseline(t *testing.T) {
	// Killing every idle node at t=0 (after warm-up, before the first
	// reference) must reproduce the no-idle-nodes baseline exactly: every
	// refault goes to disk, no stores, no hits, identical runtimes.
	failed := failureBaseConfig()
	failed.NodeFailures = []FailureEvent{{Node: 0, At: 0}, {Node: 1, At: 0}}
	withFailures := RunCluster(failed)

	baseline := failureBaseConfig()
	baseline.IdleNodes = 0 // all-disk: no global cache at all
	allDisk := RunCluster(baseline)

	if withFailures.DroppedPages == 0 {
		t.Fatal("t=0 failures should drop the warmed pages")
	}
	if withFailures.GlobalHits != 0 || withFailures.Stores != 0 || withFailures.Discards != 0 {
		t.Fatalf("dead cluster saw traffic: hits=%d stores=%d discards=%d",
			withFailures.GlobalHits, withFailures.Stores, withFailures.Discards)
	}
	if withFailures.GlobalMisses != allDisk.GlobalMisses {
		t.Fatalf("GlobalMisses = %d, all-disk baseline = %d",
			withFailures.GlobalMisses, allDisk.GlobalMisses)
	}
	if withFailures.TotalRuntime() != allDisk.TotalRuntime() {
		t.Fatalf("makespan = %d, all-disk baseline = %d",
			withFailures.TotalRuntime(), allDisk.TotalRuntime())
	}
	for i := range withFailures.Nodes {
		got, want := withFailures.Nodes[i], allDisk.Nodes[i]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("node %d: %+v differs from all-disk baseline %+v", i, got, want)
		}
	}
}

func TestMidRunFailureDegradesToDisk(t *testing.T) {
	healthy := RunCluster(failureBaseConfig())
	if healthy.DiskFaults() != 0 {
		t.Fatalf("healthy run hit disk %d times; pick a bigger donor pool", healthy.DiskFaults())
	}

	// Kill one of the two donors halfway through the healthy makespan:
	// its pages vanish, so a share of the refaults now costs a disk read.
	cfg := failureBaseConfig()
	cfg.NodeFailures = []FailureEvent{{Node: 0, At: healthy.TotalRuntime() / 2}}
	degraded := RunCluster(cfg)

	if degraded.DroppedPages == 0 {
		t.Fatal("mid-run failure should drop pages")
	}
	if degraded.DiskFaults() == 0 {
		t.Fatal("losing a donor mid-run should push refaults to disk")
	}
	if degraded.TotalRuntime() <= healthy.TotalRuntime() {
		t.Fatalf("degraded makespan %d should exceed healthy %d",
			degraded.TotalRuntime(), healthy.TotalRuntime())
	}
	// The surviving donor keeps serving: not everything goes to disk.
	if degraded.GlobalHits == 0 {
		t.Fatal("survivor should still serve hits")
	}
}

func TestRejoinRestoresCapacity(t *testing.T) {
	healthy := RunCluster(failureBaseConfig())
	mid := healthy.TotalRuntime() / 2

	gone := failureBaseConfig()
	gone.NodeFailures = []FailureEvent{{Node: 0, At: mid / 2}}
	forever := RunCluster(gone)

	back := failureBaseConfig()
	back.NodeFailures = []FailureEvent{{Node: 0, At: mid / 2, RejoinAt: mid}}
	rejoined := RunCluster(back)

	if rejoined.DroppedPages == 0 {
		t.Fatal("the failure still drops pages before the rejoin")
	}
	// A rejoined donor absorbs later evictions, so the cluster ends no
	// worse — and normally better — than losing it for good.
	if rejoined.TotalRuntime() > forever.TotalRuntime() {
		t.Fatalf("rejoin makespan %d worse than permanent-failure makespan %d",
			rejoined.TotalRuntime(), forever.TotalRuntime())
	}
}

func TestFailureScheduleIsDeterministic(t *testing.T) {
	run := func() *ClusterResult {
		cfg := failureBaseConfig()
		cfg.NodeFailures = []FailureEvent{
			{Node: 0, At: units.FromMs(50).ToTicks(), RejoinAt: units.FromMs(400).ToTicks()},
			{Node: 1, At: units.FromMs(200).ToTicks()},
		}
		return RunCluster(cfg)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed reruns differ:\n%+v\nvs\n%+v", a, b)
	}
}

func TestNodeFailuresValidation(t *testing.T) {
	expectPanic := func(name string, cfg ClusterConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RunCluster should panic", name)
			}
		}()
		RunCluster(cfg)
	}
	noIdle := failureBaseConfig()
	noIdle.IdleNodes = 0
	noIdle.NodeFailures = []FailureEvent{{Node: 0}}
	expectPanic("failures without idle nodes", noIdle)

	outOfRange := failureBaseConfig()
	outOfRange.NodeFailures = []FailureEvent{{Node: 2}}
	expectPanic("node out of range", outOfRange)
}
