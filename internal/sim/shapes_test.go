package sim

import (
	"testing"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// These integration tests assert the qualitative results of the paper's
// evaluation on short traces: who wins, in which direction the trends
// point, and where the crossovers fall. EXPERIMENTS.md records the
// quantitative comparison at larger scales.

const shapeScale = 0.08

func shapeRun(t *testing.T, app *trace.App, frac float64, p core.Policy, sub int) *Result {
	t.Helper()
	return runCfg(t, Config{App: app, MemFraction: frac, Policy: p, SubpageSize: sub})
}

func TestShapeDiskSlowestRemoteFasterSubpagesFastest(t *testing.T) {
	app := trace.Modula3(shapeScale)
	diskRes := runCfg(t, Config{App: app, MemFraction: 0.5, Policy: core.FullPage{}, Backing: Disk})
	full := shapeRun(t, app, 0.5, core.FullPage{}, units.PageSize)
	eager := shapeRun(t, app, 0.5, core.Eager{}, 1024)
	pipe := shapeRun(t, app, 0.5, core.Pipelined{}, 1024)

	if !(diskRes.Runtime > full.Runtime && full.Runtime > eager.Runtime && eager.Runtime > pipe.Runtime) {
		t.Fatalf("ordering broken: disk=%d full=%d eager=%d pipe=%d",
			diskRes.Runtime, full.Runtime, eager.Runtime, pipe.Runtime)
	}
	// Global memory beats disk by roughly the paper's factor (1.7-2.2 for
	// Modula-3; allow a wide band at this scale).
	ratio := float64(diskRes.Runtime) / float64(full.Runtime)
	if ratio < 1.4 || ratio > 3.5 {
		t.Errorf("disk/remote ratio = %.2f, paper reports ~2", ratio)
	}
	// Eager gain within the paper's reported range (Figure 9: 20-44%;
	// tolerate 5-50% at reduced scale).
	gain := 1 - float64(eager.Runtime)/float64(full.Runtime)
	if gain < 0.05 || gain > 0.50 {
		t.Errorf("eager gain = %.0f%%, paper reports 20-44%%", gain*100)
	}
}

func TestShapeBenefitGrowsWithMemoryPressure(t *testing.T) {
	app := trace.Modula3(shapeScale)
	var prev float64
	for _, frac := range []float64{1, 0.5, 0.25} {
		full := shapeRun(t, app, frac, core.FullPage{}, units.PageSize)
		eager := shapeRun(t, app, frac, core.Eager{}, 1024)
		gain := 1 - float64(eager.Runtime)/float64(full.Runtime)
		if gain < prev-0.03 { // allow small noise, require the trend
			t.Errorf("gain at mem=%.2f is %.2f, below %.2f; the trend should rise", frac, gain, prev)
		}
		if gain > prev {
			prev = gain
		}
	}
}

func TestShapeOptimalSubpageIsMidSized(t *testing.T) {
	// Paper: "subpage sizes of 1K or 2K were best"; the extremes lose to
	// the middle.
	app := trace.Modula3(shapeScale)
	runtimes := map[int]units.Ticks{}
	for _, s := range []int{256, 512, 1024, 2048, 4096} {
		runtimes[s] = shapeRun(t, app, 0.5, core.Eager{}, s).Runtime
	}
	best := 256
	for s, r := range runtimes {
		if r < runtimes[best] {
			best = s
		}
	}
	if best != 1024 && best != 2048 {
		t.Errorf("optimal subpage = %d, paper found 1-2K", best)
	}
	// And every subpage size beats full pages at 1/2-mem (paper Fig 3).
	full := shapeRun(t, app, 0.5, core.FullPage{}, units.PageSize)
	for s, r := range runtimes {
		if r >= full.Runtime {
			t.Errorf("sp_%d (%d) does not beat fullpage (%d)", s, r, full.Runtime)
		}
	}
}

func TestShapeLatencyWaitTradeoff(t *testing.T) {
	// Figure 4: smaller subpages cut sp_latency but grow page_wait.
	app := trace.Modula3(shapeScale)
	var prevSp, prevPw units.Ticks = 1 << 60, -1
	for _, s := range []int{4096, 2048, 1024, 512, 256} {
		r := shapeRun(t, app, 0.5, core.Eager{}, s)
		if r.SpLatency >= prevSp {
			t.Errorf("sp_latency should shrink with subpage size: %d at %d", r.SpLatency, s)
		}
		if r.PageWait < prevPw {
			t.Errorf("page_wait should grow as subpages shrink: %d at %d", r.PageWait, s)
		}
		prevSp, prevPw = r.SpLatency, r.PageWait
	}
}

func TestShapePipeliningCutsPageWait(t *testing.T) {
	app := trace.Modula3(shapeScale)
	for _, s := range []int{2048, 1024, 512} {
		eager := shapeRun(t, app, 0.5, core.Eager{}, s)
		pipe := shapeRun(t, app, 0.5, core.Pipelined{}, s)
		if pipe.PageWait >= eager.PageWait {
			t.Errorf("subpage %d: pipelining should cut page_wait (%d vs %d)",
				s, pipe.PageWait, eager.PageWait)
		}
		if pipe.Runtime >= eager.Runtime {
			t.Errorf("subpage %d: pipelining should win overall", s)
		}
	}
}

func TestShapeSoftwarePipeliningWeaker(t *testing.T) {
	// On the AN2 prototype, per-subpage interrupts make pipelining less
	// attractive than with an intelligent controller.
	app := trace.Modula3(shapeScale)
	ideal := shapeRun(t, app, 0.5, core.Pipelined{}, 1024)
	sw := shapeRun(t, app, 0.5, core.Pipelined{SoftwareDelivery: true}, 1024)
	if sw.Runtime <= ideal.Runtime {
		t.Errorf("software delivery (%d) should be slower than controller (%d)",
			sw.Runtime, ideal.Runtime)
	}
}

func TestShapeLazyLosesToEager(t *testing.T) {
	// §2.1: fetching subpages one at a time is much worse when the
	// program eventually touches the whole page.
	app := trace.Modula3(shapeScale)
	lazy := shapeRun(t, app, 0.5, core.Lazy{}, 1024)
	eager := shapeRun(t, app, 0.5, core.Eager{}, 1024)
	if lazy.Runtime <= eager.Runtime {
		t.Errorf("lazy (%d) should lose to eager (%d)", lazy.Runtime, eager.Runtime)
	}
	if lazy.SubpageFaults == 0 {
		t.Error("lazy should take subpage faults")
	}
}

func TestShapePlusOneDistanceDominates(t *testing.T) {
	app := trace.Modula3(shapeScale)
	r := runCfg(t, Config{
		App: app, MemFraction: 0.5, Policy: core.Eager{},
		SubpageSize: 1024, TrackPerFault: true,
	})
	if r.NextDistance.Total() == 0 {
		t.Fatal("no distance samples")
	}
	plusOne := r.NextDistance.Fraction(1)
	if plusOne < 0.35 {
		t.Errorf("+1 share = %.2f, should dominate (paper ~45-50%%)", plusOne)
	}
	for _, k := range r.NextDistance.Keys() {
		if k != 1 && r.NextDistance.Fraction(k) >= plusOne {
			t.Errorf("distance %d (%.2f) out-weighs +1 (%.2f)",
				k, r.NextDistance.Fraction(k), plusOne)
		}
	}
}

func TestShapeGdbBurstierThanAtom(t *testing.T) {
	frac := func(app *trace.App) float64 {
		r := runCfg(t, Config{
			App: app, MemFraction: 0.5, Policy: core.Eager{},
			SubpageSize: 1024, TrackPerFault: true,
		})
		// Faults in the busiest tenth of the run's events, allowing
		// multiple bursts (Figure 10's contrast).
		const windows = 100
		counts := make([]int, windows)
		for _, fe := range r.FaultEvents {
			w := int(fe * windows / (r.Events + 1))
			counts[w]++
		}
		// Sum the ten densest windows.
		for i := 0; i < 10; i++ {
			maxIdx := i
			for j := i + 1; j < windows; j++ {
				if counts[j] > counts[maxIdx] {
					maxIdx = j
				}
			}
			counts[i], counts[maxIdx] = counts[maxIdx], counts[i]
		}
		top := 0
		for _, c := range counts[:10] {
			top += c
		}
		return float64(top) / float64(len(r.FaultEvents))
	}
	gdb := frac(trace.Gdb(0.5)) // gdb is tiny; use a larger scale
	atom := frac(trace.Atom(shapeScale))
	if gdb <= atom {
		t.Errorf("gdb burstiness %.2f should exceed atom %.2f", gdb, atom)
	}
}

func TestShapeIOOverlapDominatesForBurstyApps(t *testing.T) {
	// Paper: most of the speedup comes from overlapped I/O; gdb highest,
	// Atom lowest.
	gdb := runCfg(t, Config{App: trace.Gdb(0.5), MemFraction: 0.5,
		Policy: core.Eager{}, SubpageSize: 1024})
	atom := runCfg(t, Config{App: trace.Atom(shapeScale), MemFraction: 0.5,
		Policy: core.Eager{}, SubpageSize: 1024})
	if gdb.IOOverlapShare <= atom.IOOverlapShare {
		t.Errorf("gdb io share %.2f should exceed atom %.2f",
			gdb.IOOverlapShare, atom.IOOverlapShare)
	}
	if gdb.IOOverlapShare < 0.5 {
		t.Errorf("gdb io share %.2f, paper reports 83%%", gdb.IOOverlapShare)
	}
}

func TestShapeAllAppsGainAtHalfMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("five-app sweep is slow")
	}
	for _, app := range trace.Apps(shapeScale) {
		full := shapeRun(t, app, 0.5, core.FullPage{}, units.PageSize)
		eager := shapeRun(t, app, 0.5, core.Eager{}, 1024)
		pipe := shapeRun(t, app, 0.5, core.Pipelined{}, 1024)
		if eager.Runtime >= full.Runtime {
			t.Errorf("%s: eager shows no gain", app.Name)
		}
		if pipe.Runtime >= eager.Runtime {
			t.Errorf("%s: pipelining adds nothing over eager", app.Name)
		}
	}
}
