// Package sim is the trace-driven simulator of the paper (§3.2): it
// replays an application's memory-reference trace against a model of local
// memory, global (network) memory and disk, under a configurable subpage
// transfer policy, and reports the paging behaviour — fault counts, the
// time spent waiting for subpages and for page remainders, overlap
// attribution, and the per-fault and temporal distributions behind
// Figures 5–7 and 10.
//
// The simulator's clock counts memory references: each reference is one
// event of 12 ns (units.EventNs). Network and disk latencies convert to
// events at the boundary, so the reported runtime decomposes exactly as
//
//	Runtime = Events + SpLatency + PageWait + DiskWait + PALTicks + TLBTicks
package sim

import (
	"fmt"
	"sort"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/disk"
	"github.com/gms-sim/gmsubpage/internal/gms"
	"github.com/gms-sim/gmsubpage/internal/memmodel"
	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/obs"
	"github.com/gms-sim/gmsubpage/internal/stats"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Backing selects where faults are served from.
type Backing int

const (
	// GlobalMemory serves faults from network memory via GMS (with disk
	// only as a fallback for pages not in the global cache).
	GlobalMemory Backing = iota
	// Disk serves every fault from the local disk: the paper's
	// disk_8192 baseline.
	Disk
)

// GlobalCache is the global-memory interface the simulator pages against;
// *gms.Cluster and *gms.EpochCluster implement it.
type GlobalCache interface {
	Fetch(memmodel.PageID) (gms.NodeID, bool)
	Store(memmodel.PageID) gms.NodeID
	Lookup(memmodel.PageID) (gms.NodeID, bool)
}

// TraceSource supplies a reference stream that is not a built-in App.
type TraceSource struct {
	// Name labels the run.
	Name string
	// Pages is the footprint, used to size MemFraction configurations.
	Pages int
	// NewReader returns a fresh reader over the stream; it must be
	// repeatable for warm-cache preloading to see the same pages.
	NewReader func() trace.Reader
	// Touched optionally returns the stream's distinct page numbers in
	// ascending order, sparing the warm-cache preload a full scan of the
	// stream. When nil the preload scans NewReader().
	Touched func() []uint64
}

// Config describes one simulation run.
type Config struct {
	App *trace.App

	// MemFraction sizes local memory as a fraction of the app's
	// footprint: 1 (full-mem), 0.5 (1/2-mem), 0.25 (1/4-mem).
	// MemPages overrides it when positive.
	MemFraction float64
	MemPages    int

	Policy      core.Policy
	SubpageSize int

	Backing Backing
	// ColdStart leaves the global cache empty (faults fall through to
	// disk until pages have been evicted once). The default is the
	// paper's warm cache: every page starts in network memory.
	ColdStart bool

	Net     *netmodel.Params // default netmodel.AN2ATM()
	Disk    *disk.Params     // default disk.Default()
	Cluster gms.Config       // default gms.DefaultConfig()

	// Source replays a custom reference stream instead of App's
	// generator — e.g. a trace captured with cmd/tracegen or another
	// node's offset view in a multi-node run. App may be nil when
	// Source is set.
	Source *TraceSource

	// Global overrides the run's global memory with a shared instance
	// (multi-node simulations). When set, the caller owns warming and
	// capacity; ColdStart is ignored.
	Global GlobalCache

	// PALEmulation charges Table 1 software costs for accesses to
	// incomplete pages (the prototype's software valid bits) instead of
	// assuming free TLB-based hardware support.
	PALEmulation bool

	// TLBEntries, when positive, models a TLB with that many entries
	// over pages of TLBPageSize bytes (default: the full page size).
	// Used by the small-page ablation.
	TLBEntries  int
	TLBPageSize int

	// TrackPerFault collects the per-fault arrays behind Figures 5 and 6
	// and the distance histogram behind Figure 7.
	TrackPerFault bool

	// TrackPrefetch counts speculative transfer usage: how many blocks
	// arrived beyond each fault's demanded subpage (Result.PrefetchIssued)
	// and how many of those were later accessed (Result.PrefetchUsed).
	// Tracked runs keep complete pages off the reference loop's fast path,
	// so this costs simulation wall time; results are unaffected.
	TrackPrefetch bool

	// Trace, when non-nil, records every fault's anatomy (transfer plan,
	// restart, follow-on arrivals, stall re-entries) into the given tracer
	// for JSONL / Chrome trace-event export. Tracing never advances the
	// clock; a traced run and an untraced run produce identical Results.
	Trace *obs.SimTrace
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Net == nil {
		out.Net = netmodel.AN2ATM()
	}
	if out.Disk == nil {
		out.Disk = disk.Default()
	}
	if out.Cluster.Nodes == 0 {
		out.Cluster = gms.DefaultConfig()
	}
	if out.SubpageSize == 0 {
		out.SubpageSize = units.PageSize
	}
	if out.Policy == nil {
		out.Policy = core.FullPage{}
	}
	if out.MemFraction == 0 {
		out.MemFraction = 1
	}
	if out.TLBPageSize == 0 {
		out.TLBPageSize = units.PageSize
	}
	return out
}

// memPages resolves the local memory size in pages.
func (c *Config) memPages() int {
	if c.MemPages > 0 {
		return c.MemPages
	}
	n := int(float64(c.footprint())*c.MemFraction + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

// footprint returns the workload's page count.
func (c *Config) footprint() int {
	if c.Source != nil {
		return c.Source.Pages
	}
	return c.App.TotalPages
}

// name labels the workload.
func (c *Config) name() string {
	if c.Source != nil {
		return c.Source.Name
	}
	return c.App.Name
}

// newReader opens the workload's reference stream.
func (c *Config) newReader() trace.Reader {
	if c.Source != nil {
		return c.Source.NewReader()
	}
	return c.App.NewReader()
}

// Result is the outcome of one run.
type Result struct {
	AppName  string
	Policy   string
	Subpage  int
	MemPages int

	// Time decomposition, in simulator ticks (memory-reference events).
	Events    int64       // references executed (1 tick each)
	SpLatency units.Ticks // stalls waiting for the faulted subpage
	PageWait  units.Ticks // stalls waiting for later parts of a page
	DiskWait  units.Ticks // stalls on disk service
	PALTicks  units.Ticks // software subpage-protection emulation
	TLBTicks  units.Ticks // TLB miss handling
	Runtime   units.Ticks

	// Fault counts.
	Faults        int64 // page faults (new page brought in)
	SubpageFaults int64 // lazy refetches on resident pages
	RemoteFaults  int64 // served from network memory
	DiskFaults    int64 // served from disk
	Evictions     int64
	Canceled      int64 // transfers aborted by eviction

	// Overlap attribution (see core.Engine).
	IOOverlap      units.Ticks
	CompOverlap    units.Ticks
	IOOverlapShare float64
	BytesMoved     int64

	// PAL emulation detail.
	EmulatedOps int64
	// TLB detail.
	TLBMisses int64

	// Prefetch usage (TrackPrefetch only). Issued counts blocks moved
	// beyond each fault's demanded subpage — speculative under any policy,
	// whether an eager remainder or a learned stride window; Used counts
	// the issued blocks the program went on to access. accuracy =
	// Used/Issued; unprefetched demand shows up in SubpageFaults.
	PrefetchIssued int64
	PrefetchUsed   int64

	// Per-fault data (TrackPerFault only).
	PerFaultWait []units.Ticks // total wait attributable to each fault
	// FaultEvents is the number of references executed when each page
	// fault occurred: the x-axis of the paper's Figures 6 and 10, which
	// plot fault arrival against simulation events rather than wall time.
	FaultEvents  []int64
	NextDistance stats.Hist // subpage distance to next access (Fig 7)
}

// RuntimeMs is the modelled wall time in milliseconds.
func (r *Result) RuntimeMs() float64 { return r.Runtime.Ms() }

// Speedup returns other.Runtime / r.Runtime: how much faster r is.
func (r *Result) Speedup(other *Result) float64 {
	if r.Runtime == 0 {
		return 0
	}
	return float64(other.Runtime) / float64(r.Runtime)
}

// String summarizes the run for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s %s sub=%d mem=%d: runtime=%.1fms exec=%d sp=%.1fms pw=%.1fms disk=%.1fms faults=%d",
		r.AppName, r.Policy, r.Subpage, r.MemPages, r.RuntimeMs(), r.Events,
		r.SpLatency.Ms(), r.PageWait.Ms(), r.DiskWait.Ms(), r.Faults)
}

// openTransfer pairs an in-flight transfer with its frame for end-of-run
// and eviction flushing.
type openTransfer struct {
	tr    *core.Transfer
	frame *memmodel.Frame
}

// runner holds one run's state.
type runner struct {
	cfg     Config
	res     *Result
	pt      *memmodel.PageTable
	cluster GlobalCache
	engine  *core.Engine
	diskTr  *disk.Tracker
	emu     *memmodel.Emulator
	tlb     *memmodel.TLB
	open    []openTransfer
	now     units.Ticks
	subpage int
	// trackUse maintains Frame.Prefetched marks: set for TrackPrefetch
	// runs (reporting) and for stateful policies, which need the consumed
	// marks fed back as history (core.Engine.RecordUse) to see the demand
	// stream their own predictions would otherwise hide.
	trackUse bool
}

// Run executes the simulation described by cfg and returns its Result.
func Run(cfg Config) *Result {
	r := newRunner(cfg)
	r.run()
	r.finishRun()
	return r.res
}

// newRunner prepares a run without executing it; multi-node drivers use
// it to interleave several runners on a shared global memory.
func newRunner(cfg Config) *runner {
	cfg = cfg.withDefaults()
	if cfg.App == nil && cfg.Source == nil {
		panic("sim: Config.App or Config.Source is required")
	}
	r := &runner{
		cfg:     cfg,
		subpage: cfg.SubpageSize,
		pt:      memmodel.NewPageTable(cfg.memPages()),
		cluster: cfg.Global,
		engine:  core.NewEngine(cfg.Net, cfg.Policy, cfg.SubpageSize),
		diskTr:  disk.NewTracker(cfg.Disk),
		res: &Result{
			AppName:  cfg.name(),
			Policy:   cfg.Policy.Name(),
			Subpage:  cfg.SubpageSize,
			MemPages: cfg.memPages(),
		},
	}
	r.trackUse = cfg.TrackPrefetch || r.engine.Stateful()
	if cfg.Trace != nil {
		r.engine.SetTrace(cfg.Trace)
	}
	if r.cluster == nil {
		own := gms.NewCluster(cfg.Cluster)
		r.cluster = own
		if cfg.Backing == GlobalMemory && !cfg.ColdStart {
			own.Warm(r.pagesTouched())
		}
	}
	if cfg.PALEmulation {
		r.emu = memmodel.NewEmulator(memmodel.Alpha250())
	}
	if cfg.TLBEntries > 0 {
		r.tlb = memmodel.NewTLB(cfg.TLBEntries, cfg.TLBPageSize)
	}
	return r
}

// pagesTouched returns every page the workload references, ascending, for
// warm-cache preloading. App-backed runs and sources with a Touched hook
// use the memoized footprint; other sources pay a scan of the stream.
func (r *runner) pagesTouched() []memmodel.PageID {
	if src := r.cfg.Source; src != nil && src.Touched != nil {
		return toPageIDs(src.Touched())
	}
	if r.cfg.Source == nil {
		return toPageIDs(trace.TouchedPages(r.cfg.App))
	}
	pages := make(map[memmodel.PageID]struct{}, r.cfg.footprint())
	buf := make([]trace.Ref, 8192)
	rd := r.cfg.newReader()
	for {
		n := rd.Read(buf)
		if n == 0 {
			break
		}
		for _, ref := range buf[:n] {
			pages[memmodel.PageID(ref.Addr/units.PageSize)] = struct{}{}
		}
	}
	ids := make([]memmodel.PageID, 0, len(pages))
	for p := range pages {
		ids = append(ids, p)
	}
	// Map iteration order would otherwise leak into the warm cache's age
	// ordering and node placement, making cluster runs nondeterministic.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// toPageIDs converts ascending page numbers to PageIDs, preserving order
// (the warm cache's age ordering depends on it).
func toPageIDs(pages []uint64) []memmodel.PageID {
	ids := make([]memmodel.PageID, len(pages))
	for i, p := range pages {
		ids[i] = memmodel.PageID(p)
	}
	return ids
}

// run is the main reference loop.
func (r *runner) run() {
	buf := make([]trace.Ref, 8192)
	rd := r.cfg.newReader()
	for {
		n := rd.Read(buf)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			r.step(buf[i])
		}
	}
}

// finishRun closes open transfers and assembles the result.
func (r *runner) finishRun() {
	r.flush()
	r.res.Runtime = r.now
	r.res.IOOverlap = r.engine.IOOverlap
	r.res.CompOverlap = r.engine.CompOverlap
	r.res.IOOverlapShare = r.engine.IOOverlapShare()
	r.res.BytesMoved = r.engine.BytesMoved
	if r.trackUse {
		r.res.PrefetchIssued = r.engine.PrefetchIssued
	}
	if r.emu != nil {
		r.res.EmulatedOps = r.emu.EmulatedOps
	}
	if r.tlb != nil {
		r.res.TLBMisses = r.tlb.Misses()
	}
}

// step processes one reference.
func (r *runner) step(ref trace.Ref) {
	r.now++ // this reference's execution event
	r.res.Events++

	if r.tlb != nil && !r.tlb.Access(ref.Addr) {
		d := memmodel.TLBMissCost.ToTicks()
		r.now += d
		r.res.TLBTicks += d
	}

	page := memmodel.PageID(ref.Addr / units.PageSize)
	off := int(ref.Addr % units.PageSize)

	f := r.pt.Lookup(page)
	if f == nil {
		f = r.pageFault(page, off)
	}

	// Fast path: complete page. Pages with unconsumed speculative marks
	// (TrackPrefetch runs only) stay on the slow path so usage is counted.
	if f.Xfer == nil && f.Valid == memmodel.FullBitmap && f.Prefetched == 0 {
		return
	}

	// Figure 7: first access to a different subpage after the fault.
	if f.DistFrom >= 0 {
		idx := off / r.subpage
		if idx != int(f.DistFrom) {
			if r.cfg.TrackPerFault {
				r.res.NextDistance.Add(idx - int(f.DistFrom))
			}
			f.DistFrom = -1
		}
	}

	if f.Xfer != nil {
		tr := f.Xfer.(*core.Transfer)
		r.apply(f, tr)
		if tr.Done() {
			r.finish(tr, f)
		} else if !f.Valid.Has(off) {
			if at, ok := tr.ArrivalCovering(off); ok {
				// Stall until the covering message lands.
				r.engine.NoteStall(r.now, at, tr, false)
				r.res.PageWait += at - r.now
				r.now = at
				r.apply(f, tr)
				if tr.Done() {
					r.finish(tr, f)
				}
			} else {
				// In-flight transfer does not cover this byte
				// (lazy fetch): wait it out, then refault.
				r.engine.NoteStall(r.now, tr.CompleteAt, tr, false)
				r.res.PageWait += tr.CompleteAt - r.now
				r.now = tr.CompleteAt
				r.apply(f, tr)
				r.finish(tr, f)
			}
		}
	}

	if !f.Valid.Has(off) {
		// Resident but the needed subpage never transferred: a
		// subpage fault (lazy fetch).
		r.subpageFault(f, off)
	}

	if f.Prefetched != 0 {
		// A usage-tracked run: consume the covering subpage's speculative
		// marks on its first access. Consumption is per subpage — the
		// policies' prediction unit — and feeds the stateful policy's
		// history, so the detector sees the demand stream even where a
		// correct prediction suppressed the fault.
		m := memmodel.MaskFor(r.subpage, off/r.subpage)
		if used := f.Prefetched & m; used != 0 {
			f.Prefetched &^= m
			r.res.PrefetchUsed += int64(used.Count())
			r.engine.RecordUse(f.Page, off)
		}
	}

	if r.emu != nil && f.Valid != memmodel.FullBitmap {
		d := r.emu.Access(f.Page, ref.Store).ToTicks()
		r.now += d
		r.res.PALTicks += d
	}
}

// apply folds a transfer's arrived messages into the frame, marking the
// speculative blocks (beyond the fault's demanded subpage) when the run
// tracks prefetch usage.
func (r *runner) apply(f *memmodel.Frame, tr *core.Transfer) {
	got := tr.ApplyArrived(r.now)
	f.Valid |= got
	if r.trackUse {
		f.Prefetched |= got &^ tr.Demand()
	}
}

// pageFault brings a non-resident page in and returns its frame, with the
// clock advanced past the stall.
func (r *runner) pageFault(page memmodel.PageID, off int) *memmodel.Frame {
	r.res.Faults++
	if r.cfg.TrackPerFault {
		r.res.FaultEvents = append(r.res.FaultEvents, r.res.Events)
	}

	if r.cfg.Backing == Disk {
		return r.diskFault(page)
	}
	if _, hit := r.cluster.Fetch(page); !hit {
		// Not in network memory: cold start or globally discarded.
		return r.diskFault(page)
	}
	r.res.RemoteFaults++
	tr := r.engine.StartFault(r.now, page, off)
	f := r.insert(page, 0)
	f.Xfer = tr
	f.DistFrom = int16(tr.FaultIdx)
	r.open = append(r.open, openTransfer{tr: tr, frame: f})

	r.engine.NoteStall(r.now, tr.FirstArrival, tr, true)
	r.res.SpLatency += tr.FirstArrival - r.now
	r.now = tr.FirstArrival

	r.apply(f, tr)
	if tr.Done() {
		r.finish(tr, f)
	}
	return f
}

// diskFault serves a fault synchronously from disk.
func (r *runner) diskFault(page memmodel.PageID) *memmodel.Frame {
	r.res.DiskFaults++
	lat := r.diskTr.Access(int64(page), units.PageSize).ToTicks()
	r.res.DiskWait += lat
	if r.cfg.Trace != nil {
		r.cfg.Trace.DiskFault(uint64(page), r.now, r.now+lat)
	}
	r.now += lat
	if r.cfg.TrackPerFault {
		r.res.PerFaultWait = append(r.res.PerFaultWait, lat)
	}
	return r.insert(page, memmodel.FullBitmap)
}

// subpageFault refetches one subpage of a resident page (lazy fetch).
func (r *runner) subpageFault(f *memmodel.Frame, off int) {
	r.res.SubpageFaults++
	tr := r.engine.StartFault(r.now, f.Page, off)
	if r.cfg.Trace != nil {
		r.cfg.Trace.SetKind(tr.TraceID(), obs.FaultSubpage)
	}
	f.Xfer = tr
	r.open = append(r.open, openTransfer{tr: tr, frame: f})

	r.engine.NoteStall(r.now, tr.FirstArrival, tr, true)
	r.res.SpLatency += tr.FirstArrival - r.now
	r.now = tr.FirstArrival

	r.apply(f, tr)
	if tr.Done() {
		r.finish(tr, f)
	}
}

// insert makes page resident, handling eviction (putpage to global memory)
// and cancellation of in-flight transfers on the victim.
func (r *runner) insert(page memmodel.PageID, valid memmodel.Bitmap) *memmodel.Frame {
	f, evicted := r.pt.Insert(page, valid)
	if evicted != nil {
		r.res.Evictions++
		if evicted.Xfer != nil {
			tr := evicted.Xfer.(*core.Transfer)
			r.res.Canceled++
			if r.cfg.Trace != nil {
				r.cfg.Trace.Cancel(tr.TraceID())
			}
			r.finish(tr, evicted)
		}
		if r.cfg.Backing == GlobalMemory {
			// putpage: the evicted page enters the global cache
			// (asynchronously; not on the fault's critical path).
			if _, inGlobal := r.cluster.Lookup(evicted.Page); !inGlobal {
				r.cluster.Store(evicted.Page)
			}
		}
	}
	return f
}

// finish closes a transfer: overlap attribution, per-fault wait recording,
// and removal from the open list.
func (r *runner) finish(tr *core.Transfer, f *memmodel.Frame) {
	r.engine.FinishTransfer(tr, r.now)
	if r.cfg.TrackPerFault {
		wait := (tr.FirstArrival - tr.Started) + tr.PageWait
		r.res.PerFaultWait = append(r.res.PerFaultWait, wait)
	}
	if f != nil && f.Xfer == tr {
		f.Xfer = nil
	}
	for i := range r.open {
		if r.open[i].tr == tr {
			r.open[i] = r.open[len(r.open)-1]
			r.open = r.open[:len(r.open)-1]
			break
		}
	}
}

// flush closes transfers still open at end of trace.
func (r *runner) flush() {
	for len(r.open) > 0 {
		ot := r.open[0]
		r.finish(ot.tr, ot.frame)
	}
}
