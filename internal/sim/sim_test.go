package sim

import (
	"strings"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/netmodel"
	"github.com/gms-sim/gmsubpage/internal/rng"
	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// seqTrace builds a trace touching pages 0..pages-1, refsPerPage references
// each, walking forward within each page by stride.
func seqTrace(pages, refsPerPage int, stride uint64) *trace.SliceReader {
	var refs []trace.Ref
	for p := 0; p < pages; p++ {
		off := uint64(0)
		for i := 0; i < refsPerPage; i++ {
			refs = append(refs, trace.Ref{Addr: uint64(p)*units.PageSize + off})
			off = (off + stride) % units.PageSize
		}
	}
	return &trace.SliceReader{Refs: refs}
}

// appFromRefs wraps fixed references into an App for the simulator.
func appFromRefs(name string, refs []trace.Ref, totalPages int) *trace.App {
	return trace.NewApp(name, 1, totalPages, func() []trace.Phase {
		return []trace.Phase{{Name: "fixed", Refs: int64(len(refs)), Pattern: &replay{refs: refs}}}
	})
}

// replay is a Pattern that replays a fixed slice.
type replay struct {
	refs []trace.Ref
	pos  int
}

func (r *replay) Next(_ *rng.Rand) trace.Ref {
	ref := r.refs[r.pos]
	r.pos++
	return ref
}

func seqApp(pages, refsPerPage int, stride uint64) *trace.App {
	sr := seqTrace(pages, refsPerPage, stride)
	return appFromRefs("seq", sr.Refs, pages)
}

func runCfg(t *testing.T, cfg Config) *Result {
	t.Helper()
	res := Run(cfg)
	// Universal invariant: the runtime decomposes exactly.
	sum := units.Ticks(res.Events) + res.SpLatency + res.PageWait +
		res.DiskWait + res.PALTicks + res.TLBTicks
	if res.Runtime != sum {
		t.Fatalf("runtime %d != decomposition %d (%+v)", res.Runtime, sum, res)
	}
	return res
}

func TestFullPageColdSequential(t *testing.T) {
	app := seqApp(10, 100, 64)
	res := runCfg(t, Config{
		App:    app,
		Policy: core.FullPage{},
	})
	if res.Faults != 10 {
		t.Fatalf("Faults = %d, want 10", res.Faults)
	}
	if res.RemoteFaults != 10 || res.DiskFaults != 0 {
		t.Fatalf("remote/disk = %d/%d, want 10/0", res.RemoteFaults, res.DiskFaults)
	}
	if res.Events != 1000 {
		t.Fatalf("Events = %d, want 1000", res.Events)
	}
	// Each full-page fault stalls ~1.48 ms.
	wantSp := 10 * netmodel.AN2ATM().FetchLatency(units.PageSize).ToTicks()
	if diff := abs(res.SpLatency - wantSp); diff*10 > wantSp {
		t.Fatalf("SpLatency = %d, want ~%d", res.SpLatency, wantSp)
	}
	if res.PageWait != 0 {
		t.Fatalf("full pages never page-wait, got %d", res.PageWait)
	}
}

func abs(t units.Ticks) units.Ticks {
	if t < 0 {
		return -t
	}
	return t
}

func TestDiskBackingSlower(t *testing.T) {
	app := seqApp(10, 100, 64)
	remote := runCfg(t, Config{App: app, Policy: core.FullPage{}})
	diskRes := runCfg(t, Config{App: app, Policy: core.FullPage{}, Backing: Disk})
	if diskRes.DiskFaults != 10 || diskRes.RemoteFaults != 0 {
		t.Fatalf("disk run faults: %+v", diskRes)
	}
	if diskRes.Runtime <= remote.Runtime {
		t.Fatalf("disk %d should be slower than remote %d", diskRes.Runtime, remote.Runtime)
	}
}

func TestEagerBeatsFullPageOnSparseAccess(t *testing.T) {
	// Touch each page briefly within one subpage: eager resumes after the
	// subpage and never needs the rest before moving on.
	app := seqApp(50, 20, 8) // 20 refs x 8B = 160 bytes per page
	full := runCfg(t, Config{App: app, Policy: core.FullPage{}, SubpageSize: units.PageSize})
	eager := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024})
	if eager.Runtime >= full.Runtime {
		t.Fatalf("eager %d should beat fullpage %d", eager.Runtime, full.Runtime)
	}
	if eager.Faults != full.Faults {
		t.Fatalf("same trace, different faults: %d vs %d", eager.Faults, full.Faults)
	}
}

func TestEagerPageWaitOnDenseAccess(t *testing.T) {
	// Stride crosses subpages quickly: the program catches up with the
	// rest-of-page transfer and must page-wait.
	app := seqApp(20, 64, 1024) // jumps a 1K subpage every ref
	eager := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024})
	if eager.PageWait == 0 {
		t.Fatal("dense access should produce page waits")
	}
}

func TestLazySubpageFaults(t *testing.T) {
	// Touch two subpages per page: lazy pays two full faults.
	var refs []trace.Ref
	for p := 0; p < 10; p++ {
		refs = append(refs,
			trace.Ref{Addr: uint64(p) * units.PageSize},
			trace.Ref{Addr: uint64(p)*units.PageSize + 4096},
		)
	}
	app := appFromRefs("twosub", refs, 10)
	lazy := runCfg(t, Config{App: app, Policy: core.Lazy{}, SubpageSize: 1024})
	if lazy.Faults != 10 {
		t.Fatalf("page faults = %d, want 10", lazy.Faults)
	}
	if lazy.SubpageFaults != 10 {
		t.Fatalf("subpage faults = %d, want 10", lazy.SubpageFaults)
	}
	// Eager moves the whole page; lazy moves only what is touched.
	eager := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024})
	if lazy.BytesMoved >= eager.BytesMoved {
		t.Fatalf("lazy bytes %d should be below eager %d", lazy.BytesMoved, eager.BytesMoved)
	}
}

func TestCapacityMissesAtReducedMemory(t *testing.T) {
	// Two passes over 40 pages with memory for 20: the second pass
	// faults again (LRU thrashes on a scan).
	var refs []trace.Ref
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < 40; p++ {
			for i := 0; i < 10; i++ {
				refs = append(refs, trace.Ref{Addr: uint64(p)*units.PageSize + uint64(i*8)})
			}
		}
	}
	app := appFromRefs("twopass", refs, 40)
	full := runCfg(t, Config{App: app, Policy: core.FullPage{}, MemPages: 40})
	half := runCfg(t, Config{App: app, Policy: core.FullPage{}, MemPages: 20})
	if full.Faults != 40 {
		t.Fatalf("full-mem faults = %d, want 40", full.Faults)
	}
	if half.Faults != 80 {
		t.Fatalf("half-mem faults = %d, want 80 (LRU scan thrash)", half.Faults)
	}
	if half.Evictions == 0 {
		t.Fatal("half-mem run should evict")
	}
	// Evicted pages went back to global memory, not disk.
	if half.DiskFaults != 0 {
		t.Fatalf("refaults should hit network memory, got %d disk faults", half.DiskFaults)
	}
}

func TestColdStartFallsToDisk(t *testing.T) {
	app := seqApp(10, 50, 64)
	cold := runCfg(t, Config{App: app, Policy: core.FullPage{}, ColdStart: true})
	if cold.DiskFaults != 10 {
		t.Fatalf("cold start should disk-fault all pages, got %d", cold.DiskFaults)
	}
}

func TestPerFaultTracking(t *testing.T) {
	app := seqApp(10, 100, 64)
	res := runCfg(t, Config{
		App: app, Policy: core.Eager{}, SubpageSize: 1024, TrackPerFault: true,
	})
	if len(res.FaultEvents) != int(res.Faults) {
		t.Fatalf("FaultEvents has %d entries, faults = %d", len(res.FaultEvents), res.Faults)
	}
	if len(res.PerFaultWait) != int(res.Faults) {
		t.Fatalf("PerFaultWait has %d entries, faults = %d", len(res.PerFaultWait), res.Faults)
	}
	for i := 1; i < len(res.FaultEvents); i++ {
		if res.FaultEvents[i] < res.FaultEvents[i-1] {
			t.Fatal("fault events not monotone")
		}
	}
	// Sequential within-page access: the distance histogram is dominated
	// by +1.
	if res.NextDistance.Total() == 0 {
		t.Fatal("no distance samples")
	}
	if res.NextDistance.Fraction(1) < 0.9 {
		t.Fatalf("+1 fraction = %.2f, want ~1 for a pure sequential walk",
			res.NextDistance.Fraction(1))
	}
}

func TestPALEmulationChargesOverhead(t *testing.T) {
	app := seqApp(10, 200, 256)
	plain := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024})
	pal := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024, PALEmulation: true})
	if pal.PALTicks == 0 || pal.EmulatedOps == 0 {
		t.Fatalf("PAL emulation recorded nothing: %+v", pal)
	}
	// Emulation time largely substitutes for page-wait stalls (the page
	// is incomplete in exactly the window the program would otherwise
	// wait in), so runtime grows at most slightly — the paper found <1%
	// overall slowdown.
	if pal.Runtime < plain.Runtime {
		t.Fatal("PAL emulation cannot make the run faster")
	}
	if ratio := float64(pal.Runtime) / float64(plain.Runtime); ratio > 1.10 {
		t.Fatalf("PAL emulation overhead ratio %.3f too large", ratio)
	}
}

func TestTLBModelCharges(t *testing.T) {
	app := seqApp(64, 10, 512)
	res := runCfg(t, Config{
		App: app, Policy: core.Eager{}, SubpageSize: 1024,
		TLBEntries: 8, TLBPageSize: units.PageSize,
	})
	if res.TLBMisses == 0 || res.TLBTicks == 0 {
		t.Fatalf("TLB should miss on 64 pages with 8 entries: %+v", res)
	}
}

func TestRuntimeDeterminism(t *testing.T) {
	app := trace.Gdb(0.5)
	a := runCfg(t, Config{App: app, Policy: core.Pipelined{}, SubpageSize: 1024, MemFraction: 0.5})
	b := runCfg(t, Config{App: app, Policy: core.Pipelined{}, SubpageSize: 1024, MemFraction: 0.5})
	if a.Runtime != b.Runtime || a.Faults != b.Faults {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestMemFractionSizing(t *testing.T) {
	app := seqApp(100, 10, 64)
	half := runCfg(t, Config{App: app, Policy: core.FullPage{}, MemFraction: 0.5})
	if half.MemPages != 50 {
		t.Fatalf("MemPages = %d, want 50", half.MemPages)
	}
}

func TestResultString(t *testing.T) {
	app := seqApp(4, 50, 64)
	res := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024})
	s := res.String()
	for _, want := range []string{"seq", "eager", "sub=1024", "faults=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestSpeedup(t *testing.T) {
	a := &Result{Runtime: 100}
	b := &Result{Runtime: 200}
	if a.Speedup(b) != 2 {
		t.Fatalf("Speedup = %v", a.Speedup(b))
	}
	zero := &Result{}
	if zero.Speedup(a) != 0 {
		t.Fatal("zero-runtime speedup should be 0")
	}
}

func TestEvictionsCancelInflightTransfers(t *testing.T) {
	// A tiny memory forces eviction of pages whose transfers are still
	// in flight; the canceled count must be consistent and the run must
	// still decompose exactly (checked by runCfg).
	var refs []trace.Ref
	for p := 0; p < 50; p++ {
		refs = append(refs, trace.Ref{Addr: uint64(p) * units.PageSize})
	}
	app := appFromRefs("churn", refs, 50)
	res := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024, MemPages: 2})
	if res.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if res.Canceled == 0 {
		t.Fatal("back-to-back faults with 2 frames should cancel in-flight transfers")
	}
}

func TestWarmCacheServesEvictedPagesRemotely(t *testing.T) {
	// After eviction, a page refaults from network memory (putpage put
	// it back), never from disk.
	var refs []trace.Ref
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < 6; p++ {
			for i := 0; i < 50; i++ {
				refs = append(refs, trace.Ref{Addr: uint64(p)*units.PageSize + uint64(i*8)})
			}
		}
	}
	app := appFromRefs("revisit", refs, 6)
	res := runCfg(t, Config{App: app, Policy: core.Eager{}, SubpageSize: 1024, MemPages: 3})
	if res.DiskFaults != 0 {
		t.Fatalf("disk faults = %d; evicted pages should return to global memory", res.DiskFaults)
	}
	if res.Faults <= 6 {
		t.Fatal("expected refaults beyond first touch")
	}
}
