package sim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/core"
	"github.com/gms-sim/gmsubpage/internal/obs"
)

// traceCfg is a small run that exercises every traced path: remote page
// faults with follow-on arrivals, lazy subpage refetches, stalls, and
// eviction cancellation (memory at half the footprint forces eviction).
func traceCfg(tr *obs.SimTrace) Config {
	return Config{
		App:         seqApp(12, 48, 1024),
		MemFraction: 0.5,
		Policy:      core.Lazy{},
		SubpageSize: 1024,
		Trace:       tr,
	}
}

// TestTraceDoesNotPerturbRun: a traced run must produce the exact Result of
// an untraced run — observation cannot move the clock.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	base := runCfg(t, traceCfg(nil))
	tr := &obs.SimTrace{}
	traced := runCfg(t, traceCfg(tr))
	if !reflect.DeepEqual(base, traced) {
		t.Fatalf("tracing changed the result:\nuntraced: %+v\ntraced:   %+v", base, traced)
	}
	if len(tr.Faults()) == 0 {
		t.Fatalf("traced run recorded no fault spans")
	}
}

// TestTraceCoversFaultAnatomy checks the recorded spans line up with the
// run's counters: every remote fault, subpage refetch and cancellation is a
// span, and initial stalls are marked.
func TestTraceCoversFaultAnatomy(t *testing.T) {
	tr := &obs.SimTrace{}
	res := runCfg(t, traceCfg(tr))

	var pages, subs, disks, canceled int64
	initialStalls := 0
	for _, f := range tr.Faults() {
		switch f.Kind {
		case obs.FaultPage:
			pages++
		case obs.FaultSubpage:
			subs++
		case obs.FaultDisk:
			disks++
		}
		if f.Canceled {
			canceled++
		}
		for _, s := range f.Stalls {
			if s.Initial {
				initialStalls++
			}
			if s.To <= s.From {
				t.Fatalf("empty stall span recorded: %+v", s)
			}
		}
		if f.Kind != obs.FaultDisk && !f.Finished {
			t.Fatalf("span %d never closed: %+v", f.ID, f)
		}
	}
	if pages != res.RemoteFaults {
		t.Fatalf("page spans = %d, RemoteFaults = %d", pages, res.RemoteFaults)
	}
	if subs != res.SubpageFaults {
		t.Fatalf("subpage spans = %d, SubpageFaults = %d", subs, res.SubpageFaults)
	}
	if disks != res.DiskFaults {
		t.Fatalf("disk spans = %d, DiskFaults = %d", disks, res.DiskFaults)
	}
	if canceled != res.Canceled {
		t.Fatalf("canceled spans = %d, Canceled = %d", canceled, res.Canceled)
	}
	// Every network fault stalls at least once: the resume-from-fault wait.
	if want := res.RemoteFaults + res.SubpageFaults; int64(initialStalls) != want {
		t.Fatalf("initial stalls = %d, want %d", initialStalls, want)
	}
}

// TestTraceExportDeterministic: same-seed reruns export byte-identical
// files in both formats.
func TestTraceExportDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		tr := &obs.SimTrace{Node: "seq"}
		runCfg(t, traceCfg(tr))
		var j, c bytes.Buffer
		if err := obs.WriteJSONL(&j, tr); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteChromeTrace(&c, tr); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := render()
	j2, c2 := render()
	if !bytes.Equal(j1, j2) {
		t.Fatalf("JSONL export differs across same-seed reruns")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("Chrome export differs across same-seed reruns")
	}
}
