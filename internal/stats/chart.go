package stats

import (
	"fmt"
	"math"
	"strings"
)

// This file renders the paper's figures as ASCII charts: horizontal bar
// charts for the grouped-bar figures (3, 8, 9) and line plots for the
// curve figures (1, 5, 6, 10).

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width columns, with values
// printed after each bar.
type BarChart struct {
	Title string
	Unit  string
	Bars  []Bar
	Width int // bar columns (default 48)
}

// Add appends a bar.
func (b *BarChart) Add(label string, value float64) {
	b.Bars = append(b.Bars, Bar{Label: label, Value: value})
}

// String renders the chart.
func (b *BarChart) String() string {
	width := b.Width
	if width <= 0 {
		width = 48
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	labelW, maxV := 0, 0.0
	for _, bar := range b.Bars {
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
		// Only finite values participate in scaling: one NaN or +Inf bar
		// must not flatten (or, through int(NaN)'s undefined conversion,
		// corrupt) every other bar.
		if isFinite(bar.Value) && bar.Value > maxV {
			maxV = bar.Value
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	for _, bar := range b.Bars {
		n := 0
		switch {
		case math.IsInf(bar.Value, 1):
			n = width
		case isFinite(bar.Value):
			n = int(math.Round(bar.Value / maxV * float64(width)))
			if n < 0 {
				n = 0
			}
			if n > width {
				n = width
			}
			if bar.Value > 0 && n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&sb, "%-*s |%s %.4g%s\n", labelW, bar.Label,
			strings.Repeat("#", n), bar.Value, b.Unit)
	}
	return sb.String()
}

// isFinite reports whether v is an ordinary number (not NaN, not ±Inf).
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// LinePlot renders one or more series as an ASCII scatter/line grid with
// the origin at the lower left. Series are drawn with distinct glyphs.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
}

var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// String renders the plot.
func (p *LinePlot) String() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range p.Series {
		for _, pt := range s.Points {
			// Non-finite points are unplottable and must not enter the
			// ranges: math.Min/Max propagate NaN, and a NaN range turns
			// every point's grid index into int(NaN) — a panic.
			if !isFinite(pt.X) || !isFinite(pt.Y) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
			minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
		}
	}
	if !any {
		return p.Title + " (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for _, pt := range s.Points {
			if !isFinite(pt.X) || !isFinite(pt.Y) {
				continue
			}
			col := clampInt(int((pt.X-minX)/(maxX-minX)*float64(w-1)), 0, w-1)
			row := clampInt(int((pt.Y-minY)/(maxY-minY)*float64(h-1)), 0, h-1)
			grid[h-1-row][col] = glyph
		}
	}
	var sb strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&sb, "%s\n", p.Title)
	}
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < h-1; i++ {
		fmt.Fprintf(&sb, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", minY, string(grid[h-1]))
	fmt.Fprintf(&sb, "%10s  %s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%10s  %-.4g%s%.4g\n", "", minX,
		strings.Repeat(" ", maxInt(1, w-12)), maxX)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "%10s  x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	}
	var legend []string
	for si, s := range p.Series {
		if s.Name != "" {
			legend = append(legend, fmt.Sprintf("%c %s", plotGlyphs[si%len(plotGlyphs)], s.Name))
		}
	}
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "%10s  %s\n", "", strings.Join(legend, "   "))
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
