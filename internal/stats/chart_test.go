package stats

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := &BarChart{Title: "Runtimes", Unit: "ms", Width: 20}
	c.Add("disk", 100)
	c.Add("fullpage", 50)
	c.Add("eager", 25)
	out := c.String()
	if !strings.Contains(out, "Runtimes") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The largest value fills the width; half the value is ~half the bar.
	diskBar := strings.Count(lines[1], "#")
	fullBar := strings.Count(lines[2], "#")
	eagerBar := strings.Count(lines[3], "#")
	if diskBar != 20 {
		t.Errorf("max bar = %d, want 20", diskBar)
	}
	if fullBar != 10 || eagerBar != 5 {
		t.Errorf("bars = %d/%d, want 10/5", fullBar, eagerBar)
	}
	if !strings.Contains(lines[1], "100ms") {
		t.Errorf("value missing: %q", lines[1])
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("big", 1000)
	c.Add("tiny", 1)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Errorf("nonzero value should render at least one mark: %q", lines[1])
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "empty"}
	if out := c.String(); !strings.Contains(out, "empty") {
		t.Fatalf("empty chart should still render title:\n%s", out)
	}
}

func TestLinePlotRendering(t *testing.T) {
	up := &Series{Name: "rising"}
	down := &Series{Name: "falling"}
	for i := 0; i <= 10; i++ {
		up.Add(float64(i), float64(i))
		down.Add(float64(i), float64(10-i))
	}
	p := &LinePlot{
		Title: "Crossing lines", XLabel: "time", YLabel: "value",
		Series: []*Series{up, down}, Width: 40, Height: 10,
	}
	out := p.String()
	for _, want := range []string{"Crossing lines", "rising", "falling", "*", "o", "x: time"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Axis labels carry the data range.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Errorf("axis range missing:\n%s", out)
	}
}

func TestLinePlotEmpty(t *testing.T) {
	p := &LinePlot{Title: "nothing"}
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot should say so:\n%s", out)
	}
}

func TestLinePlotSinglePoint(t *testing.T) {
	s := &Series{Name: "dot"}
	s.Add(5, 5)
	p := &LinePlot{Series: []*Series{s}, Width: 20, Height: 5}
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point should render:\n%s", out)
	}
}
