package stats

import (
	"math"
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	c := &BarChart{Title: "Runtimes", Unit: "ms", Width: 20}
	c.Add("disk", 100)
	c.Add("fullpage", 50)
	c.Add("eager", 25)
	out := c.String()
	if !strings.Contains(out, "Runtimes") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The largest value fills the width; half the value is ~half the bar.
	diskBar := strings.Count(lines[1], "#")
	fullBar := strings.Count(lines[2], "#")
	eagerBar := strings.Count(lines[3], "#")
	if diskBar != 20 {
		t.Errorf("max bar = %d, want 20", diskBar)
	}
	if fullBar != 10 || eagerBar != 5 {
		t.Errorf("bars = %d/%d, want 10/5", fullBar, eagerBar)
	}
	if !strings.Contains(lines[1], "100ms") {
		t.Errorf("value missing: %q", lines[1])
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	c := &BarChart{Width: 10}
	c.Add("big", 1000)
	c.Add("tiny", 1)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Errorf("nonzero value should render at least one mark: %q", lines[1])
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{Title: "empty"}
	if out := c.String(); !strings.Contains(out, "empty") {
		t.Fatalf("empty chart should still render title:\n%s", out)
	}
}

// TestBarChartDegenerateInputs: charts render experiment output, where a
// division by a zero denominator upstream can hand them NaN or ±Inf. The
// renderer must never panic (int(NaN) is an implementation-defined
// conversion, and a negative count panics strings.Repeat) and must not
// let one bad bar distort the others' scaling.
func TestBarChartDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		bars []Bar
		// substrings that must appear / bar widths per line (after title)
		wantBars []int
	}{
		{"nan value", []Bar{{"ok", 10}, {"bad", math.NaN()}}, []int{10, 0}},
		{"nan only", []Bar{{"bad", math.NaN()}}, []int{0}},
		{"pos inf fills", []Bar{{"ok", 10}, {"inf", math.Inf(1)}}, []int{10, 10}},
		{"neg inf empty", []Bar{{"ok", 10}, {"ninf", math.Inf(-1)}}, []int{10, 0}},
		{"negative value", []Bar{{"ok", 10}, {"neg", -5}}, []int{10, 0}},
		{"all zero", []Bar{{"a", 0}, {"b", 0}}, []int{0, 0}},
		{"single bar", []Bar{{"only", 3}}, []int{10}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			chart := &BarChart{Bars: c.bars, Width: 10}
			out := chart.String() // must not panic
			lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
			if len(lines) != len(c.wantBars) {
				t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(c.wantBars), out)
			}
			for i, want := range c.wantBars {
				if got := strings.Count(lines[i], "#"); got != want {
					t.Errorf("bar %d width = %d, want %d: %q", i, got, want, lines[i])
				}
			}
		})
	}
}

func TestLinePlotRendering(t *testing.T) {
	up := &Series{Name: "rising"}
	down := &Series{Name: "falling"}
	for i := 0; i <= 10; i++ {
		up.Add(float64(i), float64(i))
		down.Add(float64(i), float64(10-i))
	}
	p := &LinePlot{
		Title: "Crossing lines", XLabel: "time", YLabel: "value",
		Series: []*Series{up, down}, Width: 40, Height: 10,
	}
	out := p.String()
	for _, want := range []string{"Crossing lines", "rising", "falling", "*", "o", "x: time"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Axis labels carry the data range.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Errorf("axis range missing:\n%s", out)
	}
}

func TestLinePlotEmpty(t *testing.T) {
	p := &LinePlot{Title: "nothing"}
	if out := p.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot should say so:\n%s", out)
	}
}

func TestLinePlotSinglePoint(t *testing.T) {
	s := &Series{Name: "dot"}
	s.Add(5, 5)
	p := &LinePlot{Series: []*Series{s}, Width: 20, Height: 5}
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point should render:\n%s", out)
	}
}

func TestLinePlotAllEqualY(t *testing.T) {
	s := &Series{} // unnamed: no legend line to confuse the glyph count
	for i := 0; i < 5; i++ {
		s.Add(float64(i), 7)
	}
	p := &LinePlot{Series: []*Series{s}, Width: 20, Height: 5}
	out := p.String() // must not divide by a zero y-range
	if strings.Count(out, "*") != 5 {
		t.Fatalf("flat series should render all points:\n%s", out)
	}
}

// TestLinePlotNonFinitePoints pins the fix for the NaN/Inf panic: a
// non-finite point used to enter the min/max range (math.Min/Max
// propagate NaN), which turned every point's grid index into int(NaN)
// and panicked with index out of range. Non-finite points are now
// skipped from both the ranges and the grid; the finite points still
// plot against their own range.
func TestLinePlotNonFinitePoints(t *testing.T) {
	cases := []struct {
		name   string
		points []Point
		glyphs int
	}{
		{"nan y", []Point{{0, 1}, {1, math.NaN()}, {2, 3}}, 2},
		{"nan x", []Point{{math.NaN(), 1}, {1, 2}, {2, 3}}, 2},
		{"pos inf y", []Point{{0, 1}, {1, math.Inf(1)}, {2, 3}}, 2},
		{"neg inf x", []Point{{math.Inf(-1), 1}, {1, 2}}, 1},
		{"all non-finite", []Point{{math.NaN(), math.NaN()}, {0, math.Inf(1)}}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Unnamed series: no legend line to confuse the glyph count.
			p := &LinePlot{
				Series: []*Series{{Points: c.points}},
				Width:  20, Height: 5,
			}
			out := p.String() // must not panic
			if c.glyphs == 0 {
				if !strings.Contains(out, "no data") {
					t.Fatalf("plot with no finite points should say no data:\n%s", out)
				}
				return
			}
			if got := strings.Count(out, "*"); got != c.glyphs {
				t.Errorf("plotted %d points, want %d:\n%s", got, c.glyphs, out)
			}
			if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
				t.Errorf("axis labels leaked a non-finite range:\n%s", out)
			}
		})
	}
}
