// Package stats provides the small statistical containers and text
// rendering used by the experiment harness: value accumulators, integer
// histograms, (x, y) series for figures, and ASCII tables for paper tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates scalar observations and reports simple aggregates.
// The zero value is ready to use.
//
// NaN contract: NaN observations are isolated, not absorbed. A NaN fails
// every ordered comparison, so admitting one would silently poison min/max
// (it sticks as the first value and never updates), mean (NaN is
// absorbing) and percentiles (NaN sorts unpredictably). Add instead tallies
// NaNs in a separate counter, readable via NaNs(), and keeps every
// aggregate — N, Sum, Mean, Min, Max, Percentile — defined over the
// non-NaN observations only.
type Summary struct {
	n      int
	nans   int
	sum    float64
	min    float64
	max    float64
	vals   []float64 // retained for percentiles; observation counts are small
	sorted []float64 // cached sorted copy of vals; nil when stale
}

// Add records one observation. NaN is counted in NaNs() and excluded from
// every aggregate (see the type comment for the contract).
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) {
		s.nans++
		return
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.vals = append(s.vals, v)
	s.sorted = nil
}

// N reports the number of non-NaN observations.
func (s *Summary) N() int { return s.n }

// NaNs reports how many NaN observations were rejected by Add.
func (s *Summary) NaNs() int { return s.nans }

// Sum reports the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean reports the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min reports the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Percentile reports the p-th percentile (0 <= p <= 100) using the
// nearest-rank definition: the smallest observation such that at least
// p% of the data is <= it, i.e. sorted[ceil(p/100*n)] with 1-based
// ranks. With no observations it returns 0.
func (s *Summary) Percentile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := s.sortedVals()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sortedVals returns the observations in ascending order, computing and
// caching the sort on first use after any Add.
func (s *Summary) sortedVals() []float64 {
	if s.sorted == nil {
		s.sorted = append([]float64(nil), s.vals...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Median is Percentile(50).
func (s *Summary) Median() float64 { return s.Percentile(50) }

// Hist is a histogram over small integer keys (e.g. subpage distances).
// The zero value is ready to use.
type Hist struct {
	counts map[int]int64
	total  int64
}

// Add increments the count for key by 1.
func (h *Hist) Add(key int) { h.AddN(key, 1) }

// AddN increments the count for key by n.
func (h *Hist) AddN(key int, n int64) {
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[key] += n
	h.total += n
}

// Count reports the count recorded for key.
func (h *Hist) Count(key int) int64 { return h.counts[key] }

// Total reports the sum of all counts.
func (h *Hist) Total() int64 { return h.total }

// Fraction reports the share of the total held by key, or 0 when empty.
func (h *Hist) Fraction(key int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[key]) / float64(h.total)
}

// Keys returns the recorded keys in ascending order.
func (h *Hist) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, in insertion order.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the first point with the given x, and whether
// one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Table is a simple column-aligned ASCII table used to render the paper's
// tables and per-figure data dumps.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of preformatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		// The rule spans every column, including overflow columns that
		// only ragged rows contribute.
		rule := make([]string, len(widths))
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		writeRow(rule)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given number of decimals, for table cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a ratio as a percentage cell, e.g. 0.256 -> "25.6%".
func Pct(ratio float64) string { return fmt.Sprintf("%.1f%%", ratio*100) }
