package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Sum() != 31 {
		t.Errorf("Sum = %v, want 31", s.Sum())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 1/9", s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-31.0/8) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, 31.0/8)
	}
}

func TestSummaryPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		vals := raw
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		// Percentile bounds and monotonicity.
		if s.Percentile(0) != vals[0] || s.Percentile(100) != vals[len(vals)-1] {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOddEven(t *testing.T) {
	var odd Summary
	for _, v := range []float64{10, 20, 30} {
		odd.Add(v)
	}
	if odd.Median() != 20 {
		t.Errorf("odd median = %v, want 20", odd.Median())
	}
}

func TestHist(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.Fraction(1) != 0 {
		t.Fatal("empty hist should be zero")
	}
	h.Add(1)
	h.Add(1)
	h.Add(-3)
	h.AddN(7, 6)
	if h.Total() != 9 {
		t.Errorf("Total = %d, want 9", h.Total())
	}
	if h.Count(1) != 2 || h.Count(-3) != 1 || h.Count(7) != 6 {
		t.Errorf("counts wrong: %d %d %d", h.Count(1), h.Count(-3), h.Count(7))
	}
	if got := h.Fraction(7); math.Abs(got-6.0/9) > 1e-12 {
		t.Errorf("Fraction(7) = %v", got)
	}
	keys := h.Keys()
	want := []int{-3, 1, 7}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Error("YAt(3) should not exist")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "22")
	out := tab.String()
	if !strings.Contains(out, "Demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "beta-long") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:] {
		cell := strings.TrimSpace(ln[idx:])
		if cell != "1" && cell != "22" {
			t.Errorf("misaligned row %q", ln)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := F(1.23456, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.256); got != "25.6%" {
		t.Errorf("Pct = %q", got)
	}
}
