package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if s.Sum() != 31 {
		t.Errorf("Sum = %v, want 31", s.Sum())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 1/9", s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-31.0/8) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, 31.0/8)
	}
}

// TestSummaryNaNContract pins the NaN policy: Add(NaN) is tallied in
// NaNs() and excluded from every aggregate. The former behaviour let a
// single NaN poison the accumulator — as the first observation it stuck
// in min/max forever (NaN fails every ordered comparison, so no later
// value could displace it), and in any position it turned sum/mean into
// NaN and made percentiles depend on where sort.Float64s happened to
// place it.
func TestSummaryNaNContract(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		vals []float64
		n    int
		nans int
		min  float64
		max  float64
		mean float64
		p50  float64
	}{
		{"nan first", []float64{nan, 2, 4}, 2, 1, 2, 4, 3, 2},
		{"nan mid-stream", []float64{1, nan, 3}, 2, 1, 1, 3, 2, 1},
		{"nan last", []float64{5, 10, nan}, 2, 1, 5, 10, 7.5, 5},
		{"all nan", []float64{nan, nan}, 0, 2, 0, 0, 0, 0},
		{"no nan", []float64{1, 2, 3}, 3, 0, 1, 3, 2, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var s Summary
			for _, v := range c.vals {
				s.Add(v)
			}
			if s.N() != c.n || s.NaNs() != c.nans {
				t.Fatalf("N/NaNs = %d/%d, want %d/%d", s.N(), s.NaNs(), c.n, c.nans)
			}
			if s.Min() != c.min || s.Max() != c.max {
				t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min(), s.Max(), c.min, c.max)
			}
			if got := s.Mean(); got != c.mean {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
			if got := s.Percentile(50); got != c.p50 {
				t.Errorf("Percentile(50) = %v, want %v", got, c.p50)
			}
			if math.IsNaN(s.Sum()) {
				t.Error("Sum is NaN")
			}
		})
	}
}

func TestSummaryPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		vals := raw
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		// Percentile bounds and monotonicity.
		if s.Percentile(0) != vals[0] || s.Percentile(100) != vals[len(vals)-1] {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOddEven(t *testing.T) {
	var odd Summary
	for _, v := range []float64{10, 20, 30} {
		odd.Add(v)
	}
	if odd.Median() != 20 {
		t.Errorf("odd median = %v, want 20", odd.Median())
	}
}

// TestPercentileNearestRank pins the nearest-rank definition: the value
// at 1-based rank ceil(p/100*n). The former rounding implementation
// returned rank round(p/100*n), which e.g. mapped Percentile(10) over 11
// samples to the 1st sample instead of the 2nd.
func TestPercentileNearestRank(t *testing.T) {
	oneToN := func(n int) []float64 {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i + 1)
		}
		return vals
	}
	cases := []struct {
		name string
		vals []float64
		p    float64
		want float64
	}{
		{"p10 of 11 is rank ceil(1.1)=2", oneToN(11), 10, 2},
		{"p25 of 4 is rank 1", oneToN(4), 25, 1},
		{"p26 of 4 is rank ceil(1.04)=2", oneToN(4), 26, 2},
		{"p50 of 4 is rank 2", oneToN(4), 50, 2},
		{"p50 of 5 is rank 3", oneToN(5), 50, 3},
		{"p75 of 4 is rank 3", oneToN(4), 75, 3},
		{"p90 of 10 is rank 9", oneToN(10), 90, 9},
		{"p91 of 10 is rank 10", oneToN(10), 91, 10},
		{"p99 of 2 is rank 2", oneToN(2), 99, 2},
		{"p1 of 2 is rank 1", oneToN(2), 1, 1},
		{"p0 clamps to min", oneToN(7), 0, 1},
		{"p100 clamps to max", oneToN(7), 100, 7},
		{"single sample", []float64{42}, 37, 42},
		{"unsorted input", []float64{9, 1, 5}, 50, 5},
	}
	for _, c := range cases {
		var s Summary
		for _, v := range c.vals {
			s.Add(v)
		}
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("%s: Percentile(%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}

// TestPercentileCacheInvalidation checks that the cached sort is rebuilt
// after Add: a percentile query interleaved with new observations must
// see the new data.
func TestPercentileCacheInvalidation(t *testing.T) {
	var s Summary
	s.Add(10)
	if got := s.Percentile(50); got != 10 {
		t.Fatalf("Percentile(50) = %v, want 10", got)
	}
	s.Add(1)
	s.Add(2)
	if got := s.Percentile(50); got != 2 {
		t.Errorf("Percentile(50) after more Adds = %v, want 2", got)
	}
	if got := s.Percentile(100); got != 10 {
		t.Errorf("Percentile(100) after more Adds = %v, want 10", got)
	}
}

func TestHist(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.Fraction(1) != 0 {
		t.Fatal("empty hist should be zero")
	}
	h.Add(1)
	h.Add(1)
	h.Add(-3)
	h.AddN(7, 6)
	if h.Total() != 9 {
		t.Errorf("Total = %d, want 9", h.Total())
	}
	if h.Count(1) != 2 || h.Count(-3) != 1 || h.Count(7) != 6 {
		t.Errorf("counts wrong: %d %d %d", h.Count(1), h.Count(-3), h.Count(7))
	}
	if got := h.Fraction(7); math.Abs(got-6.0/9) > 1e-12 {
		t.Errorf("Fraction(7) = %v", got)
	}
	keys := h.Keys()
	want := []int{-3, 1, 7}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Error("YAt(3) should not exist")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "22")
	out := tab.String()
	if !strings.Contains(out, "Demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "beta-long") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	for _, ln := range lines[3:] {
		cell := strings.TrimSpace(ln[idx:])
		if cell != "1" && cell != "22" {
			t.Errorf("misaligned row %q", ln)
		}
	}
}

// TestTableRuleSpansRaggedRows is a regression test: when a row carries
// more cells than the header, the rule under the header must still span
// every rendered column, not just the header's.
func TestTableRuleSpansRaggedRows(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}}
	tab.AddRow("x", "y", "overflow-cell", "zz")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
	ruleCols := strings.Fields(lines[1])
	if len(ruleCols) != 4 {
		t.Fatalf("rule has %d columns, want 4: %q", len(ruleCols), lines[1])
	}
	// Each rule segment matches its column's width.
	wantWidths := []int{1, 1, len("overflow-cell"), len("zz")}
	for i, col := range ruleCols {
		if col != strings.Repeat("-", wantWidths[i]) {
			t.Errorf("rule col %d = %q, want %d dashes", i, col, wantWidths[i])
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := F(1.23456, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.256); got != "25.6%" {
		t.Errorf("Pct = %q", got)
	}
}
