package trace

import (
	"fmt"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// The five applications of the paper (§4). At scale 1.0 the traces match
// the published reference counts, full-memory footprints, and —
// approximately — the fault counts per memory configuration:
//
//	Modula-3  87M refs,  770 pages,  faults 773..5655   (compile of smalldb)
//	ld        102M refs, 6800 pages, faults 6807..10629 (link of Digital Unix)
//	Atom      73M refs,  1180 pages, faults 1175..5275  (instrumenting gzip)
//	Render    245M refs, 1430 pages, faults 1433..6145  (>100MB scene DB)
//	gdb       0.5M refs, 144 pages,  faults 138..882    (debugger startup)
//
// The generators are built from three ingredients whose fault behaviour
// under LRU is predictable:
//
//   - Expand sweeps: cyclic passes over a region. A region larger than
//     memory misses on every page of every pass (the LRU scan pathology),
//     so capacity misses are bounded by passes x pages; a region that fits
//     faults only on first touch. Sizing sweep regions between the 1/4- and
//     1/2-memory marks differentiates the memory configurations exactly as
//     the paper's applications do.
//   - WorkingSet runs: zipf-skewed hot structures (symbol tables, scene
//     indexes) sized to stay resident even at 1/4 memory, giving the
//     within-page spatial locality behind Figure 7.
//   - Dwell time: references spent per page during a sweep. Small dwells
//     produce the clustered fault bursts of gdb and phase changes
//     (Figures 6, 10); large dwells produce Atom's smooth fault arrival.
//
// Scale shrinks reference counts and region sizes proportionally (dwells
// are per-page and stay fixed), preserving passes and therefore the fault
// counts relative to footprint.

// regionAllocator hands out page-aligned, non-overlapping regions.
type regionAllocator struct{ next uint64 }

func (ra *regionAllocator) take(pages int) Region {
	r := Region{Base: ra.next, Pages: pages}
	// Leave a guard gap so patterns that wrap cannot bleed across
	// regions even if miscomputed.
	ra.next += r.Bytes() + 16*units.PageSize
	return r
}

// scaled returns max(min, round(n*scale)).
func scaled(n int, scale float64, min int) int {
	v := int(float64(n)*scale + 0.5)
	if v < min {
		v = min
	}
	return v
}

func scaledRefs(n int64, scale float64) int64 {
	v := int64(float64(n) * scale)
	if v < 1000 {
		v = 1000
	}
	return v
}

// Dense-visit fractions: reading input is a denser access pattern (the
// program consumes pages front to back) than revisiting already-built
// structures.
const (
	denseRead    = 0.70
	denseRevisit = 0.35
)

// sweep builds a Sweep that makes the given number of subsweeps over region
// when granted budget references (a phase's total times the Mix weight).
func sweep(region Region, budget int64, weight float64, passes int, crossFrac float64) *Sweep {
	visit := int(float64(budget) * weight / float64(region.Pages*passes))
	if visit < 1 {
		visit = 1
	}
	return &Sweep{Region: region, VisitRefs: visit, CrossFrac: crossFrac}
}

// Modula3 models the DEC SRC Modula-3 compiler compiling the smalldb
// library: source reading, AST construction, and typecheck/codegen passes
// that re-sweep the AST (larger than 1/2 memory) and loop over the
// intermediate representation (between 1/4 and 1/2 memory), with a hot
// symbol table throughout.
func Modula3(scale float64) *App {
	var ra regionAllocator
	source := ra.take(scaled(100, scale, 4))
	ast := ra.take(scaled(330, scale, 8))
	ir := ra.take(scaled(230, scale, 6))
	symtab := ra.take(scaled(60, scale, 4))
	output := ra.take(scaled(50, scale, 4))
	total := source.Pages + ast.Pages + ir.Pages + symtab.Pages + output.Pages

	p1, p2, p3, p4 := scaledRefs(6_000_000, scale), scaledRefs(26_000_000, scale),
		scaledRefs(25_000_000, scale), scaledRefs(30_000_000, scale)
	return NewApp("modula3", 0x6d33, total, func() []Phase {
		return []Phase{
			{"read-source", p1, sweep(source, p1, 1.0, 1, denseRead)},
			{"build-ast", p2, &Mix{
				Patterns: []Pattern{
					sweep(ast, p2, 0.45, 1, denseRead),
					sweep(ir, p2, 0.25, 1, denseRead),
					&WorkingSet{Region: symtab, Skew: 0.8, MeanRun: 16, StoreFrac: 0.4},
				},
				Weights: []float64{0.45, 0.25, 0.30},
			}},
			{"typecheck", p3, &Mix{
				Patterns: []Pattern{
					sweep(ast, p3, 0.40, 2, denseRevisit),
					sweep(ir, p3, 0.35, 8, denseRevisit),
					&WorkingSet{Region: symtab, Skew: 0.8, MeanRun: 12},
				},
				Weights: []float64{0.40, 0.35, 0.25},
			}},
			{"codegen", p4, &Mix{
				Patterns: []Pattern{
					sweep(ast, p4, 0.35, 2, denseRevisit),
					sweep(ir, p4, 0.25, 8, denseRevisit),
					&WorkingSet{Region: symtab, Skew: 0.8, MeanRun: 12},
					sweep(output, p4, 0.25, 1, denseRead),
				},
				Weights: []float64{0.35, 0.25, 0.15, 0.25},
			}},
		}
	})
}

// Ld models the Unix linker relinking Digital Unix: a huge, mostly
// single-pass sequential read of object files with a hot symbol table,
// then a relocation pass that re-reads the text objects. Re-reference is
// the smallest of the five apps, so fault counts grow only ~1.5x from
// full- to 1/4-memory.
func Ld(scale float64) *App {
	var ra regionAllocator
	objText := ra.take(scaled(3800, scale, 10))
	objData := ra.take(scaled(2100, scale, 8))
	symtab := ra.take(scaled(450, scale, 8))
	output := ra.take(scaled(450, scale, 8))
	total := objText.Pages + objData.Pages + symtab.Pages + output.Pages

	p1, p2, p3, p4 := scaledRefs(32_000_000, scale), scaledRefs(18_000_000, scale),
		scaledRefs(17_000_000, scale), scaledRefs(35_000_000, scale)
	return NewApp("ld", 0x1d1d, total, func() []Phase {
		return []Phase{
			{"read-text", p1, &Mix{
				Patterns: []Pattern{
					sweep(objText, p1, 0.8, 1, denseRead),
					&WorkingSet{Region: symtab, Skew: 0.8, MeanRun: 12, StoreFrac: 0.4},
				},
				Weights: []float64{0.8, 0.2},
			}},
			{"read-data", p2, &Mix{
				Patterns: []Pattern{
					sweep(objData, p2, 0.8, 1, denseRead),
					&WorkingSet{Region: symtab, Skew: 0.8, MeanRun: 12, StoreFrac: 0.4},
				},
				Weights: []float64{0.8, 0.2},
			}},
			{"resolve", p3, &WorkingSet{
				Region: symtab, Skew: 0.7, MeanRun: 10, StoreFrac: 0.2,
			}},
			{"relocate-write", p4, &Mix{
				Patterns: []Pattern{
					sweep(objText, p4, 0.5, 1, denseRevisit),
					sweep(output, p4, 0.3, 1, denseRead),
					&WorkingSet{Region: symtab, Skew: 0.8, MeanRun: 10},
				},
				Weights: []float64{0.5, 0.3, 0.2},
			}},
		}
	})
}

// Atom models the Atom instrumentation tool processing the gzip binary.
// Every region is swept exactly once over the whole run, so first-touch
// faults arrive evenly from start to finish; the text section (sized
// between 1/4 and 1/2 memory) is re-swept continuously, which costs
// nothing at 1/2 memory but thrashes at 1/4. Atom is therefore the
// paper's least-clustered application (Figure 10), with the least benefit
// from I/O overlap.
func Atom(scale float64) *App {
	var ra regionAllocator
	binText := ra.take(scaled(380, scale, 8))
	binData := ra.take(scaled(240, scale, 6))
	tables := ra.take(scaled(200, scale, 6))
	hot := ra.take(scaled(60, scale, 4))
	output := ra.take(scaled(280, scale, 6))
	total := binText.Pages + binData.Pages + tables.Pages + hot.Pages + output.Pages

	p1 := scaledRefs(73_000_000, scale)
	return NewApp("atom", 0xa706, total, func() []Phase {
		// The text section gets a slow first read (spread over ~40% of
		// the run) followed by 11 fast analysis re-sweeps.
		textSweep := &Sweep{
			Region:         binText,
			FirstVisitRefs: int(float64(p1) * 0.30 * 0.40 / float64(binText.Pages)),
			VisitRefs:      int(float64(p1) * 0.30 * 0.60 / float64(binText.Pages*11)),
			CrossFrac:      denseRevisit,
		}
		return []Phase{
			{"instrument", p1, &Mix{
				Patterns: []Pattern{
					textSweep,
					sweep(binData, p1, 0.15, 1, denseRead),
					sweep(tables, p1, 0.15, 1, denseRead),
					&WorkingSet{Region: hot, Skew: 0.7, MeanRun: 24, StoreFrac: 0.4},
					sweep(output, p1, 0.15, 1, denseRead),
				},
				Weights: []float64{0.30, 0.15, 0.15, 0.25, 0.15},
			}},
		}
	})
}

// Render models the graphics renderer walking a large precomputed scene
// database: each frame sweeps a view slice of the DB (larger than 1/4
// memory) twice while consulting a hot spatial index, then draws into a
// small framebuffer. Frame starts give the clustered fault bursts that
// make Render one of the biggest subpage winners.
func Render(scale float64) *App {
	var ra regionAllocator
	db := ra.take(scaled(1280, scale, 16))
	idx := ra.take(scaled(100, scale, 4))
	fb := ra.take(scaled(50, scale, 4))
	total := db.Pages + idx.Pages + fb.Pages

	const frames = 8
	walkRefs := scaledRefs(245_000_000/frames*55/100, scale)
	drawRefs := scaledRefs(245_000_000/frames*45/100, scale)
	return NewApp("render", 0x4e4d, total, func() []Phase {
		var phases []Phase
		step := db.Pages / frames
		slicePages := db.Pages * 5 / 16 // ~400 at full scale: 1/4 < slice < 1/2 mem
		for f := 0; f < frames; f++ {
			slice := Region{Base: db.Base + uint64(f*step)*units.PageSize, Pages: slicePages}
			if slice.End() > db.End() {
				slice.Pages -= int((slice.End() - db.End()) / units.PageSize)
			}
			phases = append(phases,
				Phase{fmt.Sprintf("frame%d-walk", f), walkRefs, &Mix{
					Patterns: []Pattern{
						sweep(slice, walkRefs, 0.5, 2, denseRead),
						&WorkingSet{Region: idx, Skew: 0.8, MeanRun: 24},
					},
					Weights: []float64{0.5, 0.5},
				}},
				Phase{fmt.Sprintf("frame%d-draw", f), drawRefs, &Mix{
					Patterns: []Pattern{
						&WorkingSet{Region: idx, Skew: 0.8, MeanRun: 32},
						sweep(fb, drawRefs, 0.5, 3, denseRead),
					},
					Weights: []float64{0.5, 0.5},
				}},
			)
		}
		return phases
	})
}

// Gdb models the GNU debugger's initialization: symbol loading that
// touches most of the footprint nearly back-to-back (a few hundred
// references per page), then an init loop that re-sweeps the primary
// symbol region rapidly. The paper notes gdb has the most clustered faults
// and the largest I/O-overlap benefit.
func Gdb(scale float64) *App {
	var ra regionAllocator
	symA := ra.take(scaled(60, scale, 6))
	symB := ra.take(scaled(60, scale, 6))
	heap := ra.take(scaled(24, scale, 4))
	total := symA.Pages + symB.Pages + heap.Pages

	p1a, p1b := scaledRefs(70_000, scale), scaledRefs(70_000, scale)
	quiet, burst := scaledRefs(44_000, scale), scaledRefs(8_000, scale)
	const loops = 7
	return NewApp("gdb", 0x9db9, total, func() []Phase {
		phases := []Phase{
			{"load-symtab", p1a, sweep(symA, p1a, 1.0, 1, denseRead)},
			{"load-debuginfo", p1b, sweep(symB, p1b, 1.0, 1, denseRead)},
		}
		// The init loop alternates quiet heap work with rapid re-scans
		// of the symbol table: fault bursts separated by quiet
		// stretches give gdb the steepest clustering curve of the five
		// applications (Figure 10).
		for k := 0; k < loops; k++ {
			phases = append(phases,
				Phase{fmt.Sprintf("init-work%d", k), quiet, &WorkingSet{
					Region: heap, Skew: 0.8, MeanRun: 24, StoreFrac: 0.3,
				}},
				Phase{fmt.Sprintf("init-scan%d", k), burst,
					sweep(symA, burst, 1.0, 1, denseRevisit)},
			)
		}
		return phases
	})
}

// Apps returns all five paper applications at the given scale, in the
// paper's order.
func Apps(scale float64) []*App {
	return []*App{Modula3(scale), Ld(scale), Atom(scale), Render(scale), Gdb(scale)}
}

// ByName returns the named app at the given scale, or nil.
func ByName(name string, scale float64) *App {
	for _, a := range Apps(scale) {
		if a.Name == name {
			return a
		}
	}
	return nil
}
