package trace

import (
	"sort"
	"sync"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// The trace cache memoizes synthesized reference streams so a parallel
// experiment sweep synthesizes each app × scale trace once and shares it —
// read-only — across every simulation cell, instead of regenerating it per
// run (each sim.Run otherwise replays the generators twice: once for the
// warm-cache footprint scan and once for the reference loop).
//
// References are packed to 8 bytes (addr<<1 | store) and the cache is
// admission-bounded by a byte budget: traces that would overflow the budget
// simply fall back to the generators, so output never depends on what got
// cached. Entries are immutable once synthesized, which is what makes
// sharing across worker goroutines safe.

// DefaultCacheBudget bounds the packed bytes the trace cache may retain.
// At the paper's full scale the five app traces pack to ~4 GiB; the default
// keeps the hottest apps cached without risking small machines.
const DefaultCacheBudget int64 = 2 << 30

// cacheKey identifies one synthesized stream. Scale is not stored on App,
// but (name, seed, pages, refs) uniquely determine the generated stream.
type cacheKey struct {
	name  string
	seed  uint64
	pages int
	refs  int64
}

type cacheEntry struct {
	admitted bool // packed refs fit the budget at admission time

	refsOnce sync.Once
	packed   []uint64 // addr<<1|store, immutable after refsOnce

	pagesOnce sync.Once
	touched   []uint64 // distinct pages ascending, immutable after pagesOnce
}

var traceCache = struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	bytes   int64
	budget  int64
}{entries: make(map[cacheKey]*cacheEntry), budget: DefaultCacheBudget}

// SetCacheBudget bounds the bytes of packed references the trace cache may
// hold; 0 disables caching of reference streams (footprints are still
// memoized). Already-cached entries are kept. Returns the previous budget.
func SetCacheBudget(n int64) int64 {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	prev := traceCache.budget
	traceCache.budget = n
	return prev
}

// CacheStats reports the trace cache's occupancy.
type CacheStats struct {
	Entries int   // streams admitted
	Bytes   int64 // packed bytes retained
	Budget  int64
}

// CacheUsage returns the current cache occupancy.
func CacheUsage() CacheStats {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	n := 0
	for _, e := range traceCache.entries {
		if e.admitted {
			n++
		}
	}
	return CacheStats{Entries: n, Bytes: traceCache.bytes, Budget: traceCache.budget}
}

// resetCache drops every entry (tests only).
func resetCache() {
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	traceCache.entries = make(map[cacheKey]*cacheEntry)
	traceCache.bytes = 0
}

// cacheFor returns the app's cache entry, admitting its packed size against
// the budget on first sight.
func cacheFor(a *App) *cacheEntry {
	key := cacheKey{name: a.Name, seed: a.Seed, pages: a.TotalPages, refs: a.totalRefs}
	traceCache.mu.Lock()
	defer traceCache.mu.Unlock()
	if e, ok := traceCache.entries[key]; ok {
		return e
	}
	e := &cacheEntry{}
	if size := a.totalRefs * 8; size > 0 && traceCache.bytes+size <= traceCache.budget {
		e.admitted = true
		traceCache.bytes += size
	}
	traceCache.entries[key] = e
	return e
}

// synthesize materializes the app's stream into e.packed. Safe only inside
// e.refsOnce.
func (e *cacheEntry) synthesize(a *App) {
	packed := make([]uint64, 0, a.totalRefs)
	buf := make([]Ref, 8192)
	rd := a.generatorReader()
	for {
		n := rd.Read(buf)
		if n == 0 {
			break
		}
		for _, ref := range buf[:n] {
			p := ref.Addr << 1
			if ref.Store {
				p |= 1
			}
			packed = append(packed, p)
		}
	}
	e.packed = packed
}

// packedReader replays a cached stream. Each reader has private position
// state; the packed slice itself is shared and never written.
type packedReader struct {
	refs []uint64
	pos  int
}

func (p *packedReader) Read(buf []Ref) int {
	i := 0
	for i < len(buf) && p.pos < len(p.refs) {
		v := p.refs[p.pos]
		buf[i] = Ref{Addr: v >> 1, Store: v&1 != 0}
		i++
		p.pos++
	}
	return i
}

// TouchedPages returns the distinct page numbers (Addr / units.PageSize)
// the app's trace references, in ascending order — the warm-cache preload
// set. The result is memoized per app × scale and shared: callers must not
// modify it.
func TouchedPages(a *App) []uint64 {
	e := cacheFor(a)
	e.pagesOnce.Do(func() {
		e.touched = scanTouched(a.NewReader())
	})
	return e.touched
}

// scanTouched reads a stream to the end and collects its footprint.
func scanTouched(rd Reader) []uint64 {
	pages := make(map[uint64]struct{})
	buf := make([]Ref, 8192)
	for {
		n := rd.Read(buf)
		if n == 0 {
			break
		}
		for _, ref := range buf[:n] {
			pages[ref.Addr/units.PageSize] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(pages))
	for p := range pages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
