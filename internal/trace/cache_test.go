package trace

import (
	"sync"
	"testing"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// drain reads a stream to the end.
func drain(t *testing.T, rd Reader) []Ref {
	t.Helper()
	var out []Ref
	buf := make([]Ref, 1024)
	for {
		n := rd.Read(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func sameRefs(a, b []Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCachedReaderMatchesGenerator: the packed replay must be byte-for-byte
// the generator's stream — the cache is a pure memoization.
func TestCachedReaderMatchesGenerator(t *testing.T) {
	resetCache()
	defer resetCache()
	app := Gdb(0.3)
	want := drain(t, app.generatorReader())
	got := drain(t, app.NewReader())
	if !sameRefs(want, got) {
		t.Fatalf("cached stream differs from generated stream (%d vs %d refs)", len(got), len(want))
	}
	if u := CacheUsage(); u.Entries != 1 || u.Bytes != app.TotalRefs()*8 {
		t.Fatalf("cache usage = %+v, want 1 entry of %d bytes", u, app.TotalRefs()*8)
	}
	// A second reader replays the same shared copy from the start.
	again := drain(t, app.NewReader())
	if !sameRefs(want, again) {
		t.Fatal("second cached reader differs")
	}
}

// TestCacheBudgetZeroDisables: with no budget every reader regenerates and
// still produces the identical stream.
func TestCacheBudgetZeroDisables(t *testing.T) {
	resetCache()
	prev := SetCacheBudget(0)
	defer func() { SetCacheBudget(prev); resetCache() }()
	app := Gdb(0.3)
	if _, ok := app.NewReader().(*packedReader); ok {
		t.Fatal("reader cached despite zero budget")
	}
	if u := CacheUsage(); u.Entries != 0 || u.Bytes != 0 {
		t.Fatalf("cache not empty: %+v", u)
	}
}

// TestCacheAdmissionBounded: an app bigger than the remaining budget falls
// back to generation without evicting what's cached.
func TestCacheAdmissionBounded(t *testing.T) {
	resetCache()
	small := Gdb(0.3)
	prev := SetCacheBudget(small.TotalRefs() * 8)
	defer func() { SetCacheBudget(prev); resetCache() }()
	if _, ok := small.NewReader().(*packedReader); !ok {
		t.Fatal("small app should be admitted")
	}
	big := Modula3(0.3)
	if _, ok := big.NewReader().(*packedReader); ok {
		t.Fatal("big app should have been refused")
	}
	if u := CacheUsage(); u.Entries != 1 {
		t.Fatalf("cache usage = %+v, want the small entry only", u)
	}
}

// TestTouchedPages: the memoized footprint equals a scan of the stream, is
// ascending, and is shared across calls.
func TestTouchedPages(t *testing.T) {
	resetCache()
	defer resetCache()
	app := Gdb(0.3)
	got := TouchedPages(app)
	want := map[uint64]struct{}{}
	for _, r := range drain(t, app.NewReader()) {
		want[r.Addr/units.PageSize] = struct{}{}
	}
	if len(got) != len(want) {
		t.Fatalf("footprint %d pages, scan found %d", len(got), len(want))
	}
	for i, p := range got {
		if _, ok := want[p]; !ok {
			t.Fatalf("page %d not in scan", p)
		}
		if i > 0 && got[i-1] >= p {
			t.Fatalf("footprint not strictly ascending at %d", i)
		}
	}
	again := TouchedPages(Gdb(0.3)) // distinct *App, same key
	if &again[0] != &got[0] {
		t.Fatal("footprint not memoized across App instances")
	}
}

// TestCacheConcurrentReaders: many goroutines racing to be first reader of
// the same stream all see the identical trace (run under -race in CI).
func TestCacheConcurrentReaders(t *testing.T) {
	resetCache()
	defer resetCache()
	app := Gdb(0.2)
	want := drain(t, app.generatorReader())
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]Ref, 512)
			var got []Ref
			rd := Gdb(0.2).NewReader()
			for {
				n := rd.Read(buf)
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			if !sameRefs(want, got) {
				errs <- "concurrent reader produced a different stream"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
