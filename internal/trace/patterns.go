package trace

import (
	"github.com/gms-sim/gmsubpage/internal/rng"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// Region is a contiguous range of virtual pages.
type Region struct {
	Base  uint64 // byte address of the first page; page aligned
	Pages int
}

// Bytes returns the region size in bytes.
func (r Region) Bytes() uint64 { return uint64(r.Pages) * units.PageSize }

// End returns the first byte past the region.
func (r Region) End() uint64 { return r.Base + r.Bytes() }

// Seq walks a region sequentially with a fixed stride, wrapping at the end.
// With strides much smaller than a subpage it produces the paper's dominant
// +1 next-subpage distance.
type Seq struct {
	Region Region
	Stride uint64 // bytes between references; 0 means 8
	// StoreEvery makes every k-th reference a store (0 disables stores).
	StoreEvery int

	off   uint64
	count int
}

// Next implements Pattern.
func (s *Seq) Next(r *rng.Rand) Ref {
	stride := s.Stride
	if stride == 0 {
		stride = 8
	}
	addr := s.Region.Base + s.off
	s.off += stride
	if s.off >= s.Region.Bytes() {
		s.off = 0
	}
	s.count++
	store := s.StoreEvery > 0 && s.count%s.StoreEvery == 0
	return Ref{Addr: addr, Store: store}
}

// WorkingSet models pointer-heavy computation over a region: it picks a
// page (zipf-skewed so some pages are hot), then performs a geometric-length
// sequential run within that page from a random start. Runs inside a page
// give spatial locality; page switches give the fault stream.
type WorkingSet struct {
	Region Region
	// Skew is the zipf exponent over pages (0 means uniform).
	Skew float64
	// MeanRun is the mean number of references per within-page run.
	MeanRun int
	// RunStride is the stride within a run (default 8).
	RunStride uint64
	// StoreFrac is the probability a reference is a store.
	StoreFrac float64

	zipf    *rng.Zipf
	page    int
	off     uint64
	left    int
	started bool
}

// Next implements Pattern.
func (w *WorkingSet) Next(r *rng.Rand) Ref {
	if !w.started {
		if w.Skew > 0 {
			w.zipf = rng.NewZipf(w.Region.Pages, w.Skew)
		}
		w.started = true
	}
	if w.left <= 0 {
		if w.zipf != nil {
			w.page = w.zipf.Sample(r)
		} else {
			w.page = r.Intn(w.Region.Pages)
		}
		w.off = uint64(r.Intn(units.PageSize))
		mean := w.MeanRun
		if mean < 1 {
			mean = 16
		}
		w.left = 1 + r.Geometric(1/float64(mean))
	}
	stride := w.RunStride
	if stride == 0 {
		stride = 8
	}
	addr := w.Region.Base + uint64(w.page)*units.PageSize + w.off
	w.off += stride
	if w.off >= units.PageSize {
		w.off = 0 // wrap within the page
	}
	w.left--
	return Ref{Addr: addr, Store: r.Bool(w.StoreFrac)}
}

// Sweep models streaming passes over a region with the within-page
// temporal structure real programs exhibit: each *visit* to a page touches
// only a small neighbourhood (VisitBytes, by default 1 KiB) for VisitRefs
// references, then the sweep moves to the next page. When the whole region
// has been visited, the next subsweep begins, revisiting every page one
// VisitBytes-window further in.
//
// This produces the paper's observed behaviour:
//   - the first touch of a page stays near the faulted word, so the rest
//     of the page can arrive asynchronously (eager fullpage fetch wins);
//   - the first *different* subpage access is the next consecutive one
//     (Figure 7's dominant +1 distance), but it happens a full region
//     cycle later;
//   - small VisitRefs values make faults arrive in tight bursts (gdb,
//     phase changes), large values make them smooth (Atom);
//   - a region larger than memory faults every page once per subsweep
//     under LRU (the scan pathology), so capacity misses are bounded and
//     tunable as subsweeps x pages.
type Sweep struct {
	Region Region
	// VisitRefs is the number of references per page visit (default 128).
	VisitRefs int
	// FirstVisitRefs, when positive, overrides VisitRefs during the
	// first subsweep: a slow initial read pass followed by fast
	// re-sweeps, which spreads first-touch faults over the run while
	// keeping later passes cheap (Atom's access shape).
	FirstVisitRefs int
	// VisitBytes is the neighbourhood a visit touches (default 1 KiB).
	VisitBytes int
	// Stride is the distance between consecutive references in a visit
	// (default 8).
	Stride uint64
	// StoreEvery makes every k-th reference a store (0 disables stores).
	StoreEvery int
	// CrossFrac is the probability that a visit runs *dense*: it spans
	// two VisitBytes windows instead of one, immediately touching the
	// next subpage after a fault. Dense visits are the paper's
	// worst-case faults (Figure 5's upper-left segment): the program
	// blocks for the rest of the page unless a pipelined neighbour
	// subpage rescues it. Input-reading passes are denser than
	// revisiting passes.
	CrossFrac float64

	page     int
	subsweep int
	off      uint64
	done     int
	count    int
	crossing bool
	target   uint64 // window base the dense second half lands in
	started  bool
}

// rollVisit decides whether the visit starting now is dense and, if so,
// which second window it touches. The direction split follows Figure 7's
// next-subpage distance distribution: mostly the next consecutive window,
// sometimes the previous, and a substantial tail elsewhere in the page
// (which pipelined +1/-1 subpages cannot rescue).
func (s *Sweep) rollVisit(r *rng.Rand, base, visitBytes uint64) {
	s.crossing = r.Bool(s.CrossFrac)
	if !s.crossing {
		return
	}
	windows := uint64(units.PageSize) / visitBytes
	u := r.Float64()
	switch {
	case u < 0.50: // next consecutive window
		s.target = (base + visitBytes) % units.PageSize
	case u < 0.60: // previous window
		s.target = (base + units.PageSize - visitBytes) % units.PageSize
	default: // somewhere else in the page
		s.target = uint64(r.Intn(int(windows))) * visitBytes
		if s.target == base {
			s.target = (base + 2*visitBytes) % units.PageSize
		}
	}
}

// Next implements Pattern.
func (s *Sweep) Next(r *rng.Rand) Ref {
	visitRefs := s.VisitRefs
	if s.subsweep == 0 && s.FirstVisitRefs > 0 {
		visitRefs = s.FirstVisitRefs
	}
	if visitRefs <= 0 {
		visitRefs = 128
	}
	visitBytes := uint64(s.VisitBytes)
	if visitBytes == 0 || visitBytes > units.PageSize {
		visitBytes = 1024
	}
	stride := s.Stride
	if stride == 0 {
		stride = 8
	}
	base := (uint64(s.subsweep) * visitBytes) % units.PageSize
	if !s.started {
		s.started = true
		s.rollVisit(r, base, visitBytes)
	}
	if s.done >= visitRefs {
		s.done = 0
		s.off = 0
		s.page++
		if s.page >= s.Region.Pages {
			s.page = 0
			s.subsweep++
		}
		base = (uint64(s.subsweep) * visitBytes) % units.PageSize
		s.rollVisit(r, base, visitBytes)
	}
	var off uint64
	if s.crossing {
		// A dense visit covers two windows with the same number of
		// references: the faulted window first, then the target. The
		// step doubles the stride, growing further for short visits so
		// both windows are always reached.
		step := stride * 2
		if minStep := (2*visitBytes + uint64(visitRefs) - 1) / uint64(visitRefs); step < minStep {
			step = minStep
		}
		pos := (uint64(s.done) * step) % (2 * visitBytes)
		if pos < visitBytes {
			off = base + pos
		} else {
			off = s.target + (pos - visitBytes)
		}
	} else {
		off = base + s.off%visitBytes
	}
	addr := s.Region.Base + uint64(s.page)*units.PageSize + off
	s.off += stride
	s.done++
	s.count++
	store := s.StoreEvery > 0 && s.count%s.StoreEvery == 0
	return Ref{Addr: addr, Store: store}
}

// Mix interleaves child patterns: each reference is drawn from pattern i
// with probability Weights[i] (normalized), switching in short runs to
// avoid unrealistically fine interleaving.
type Mix struct {
	Patterns []Pattern
	Weights  []float64
	// RunLen is the mean references per stretch of one pattern
	// (default 32).
	RunLen int

	cur  int
	left int
	cdf  []float64
}

// Next implements Pattern.
func (m *Mix) Next(r *rng.Rand) Ref {
	if m.cdf == nil {
		total := 0.0
		for _, w := range m.Weights {
			total += w
		}
		m.cdf = make([]float64, len(m.Weights))
		acc := 0.0
		for i, w := range m.Weights {
			acc += w / total
			m.cdf[i] = acc
		}
	}
	if m.left <= 0 {
		u := r.Float64()
		m.cur = len(m.cdf) - 1
		for i, c := range m.cdf {
			if u <= c {
				m.cur = i
				break
			}
		}
		run := m.RunLen
		if run < 1 {
			run = 32
		}
		m.left = 1 + r.Geometric(1/float64(run))
	}
	m.left--
	return m.Patterns[m.cur].Next(r)
}
