package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/gms-sim/gmsubpage/internal/units"
)

// Profile summarizes a trace: its length, footprint, and store fraction.
type Profile struct {
	Refs       int64
	Pages      int
	Stores     int64
	FirstTouch []int64 // event index of each page's first touch, in touch order
}

// StoreFrac returns the fraction of references that are stores.
func (p *Profile) StoreFrac() float64 {
	if p.Refs == 0 {
		return 0
	}
	return float64(p.Stores) / float64(p.Refs)
}

// ProfileOf scans a reader to the end and summarizes it.
func ProfileOf(r Reader) *Profile {
	var p Profile
	seen := make(map[uint64]struct{})
	buf := make([]Ref, 8192)
	for {
		n := r.Read(buf)
		if n == 0 {
			break
		}
		for _, ref := range buf[:n] {
			page := ref.Addr / units.PageSize
			if _, ok := seen[page]; !ok {
				seen[page] = struct{}{}
				p.FirstTouch = append(p.FirstTouch, p.Refs)
			}
			if ref.Store {
				p.Stores++
			}
			p.Refs++
		}
	}
	p.Pages = len(seen)
	return &p
}

// File format for saved traces: a 16-byte header ("GMSTRACE", version,
// count) followed by count little-endian records of 9 bytes (addr, flags).

const (
	fileMagic   = "GMSTRACE"
	fileVersion = 1
)

// Write serializes every reference from r to w.
func Write(w io.Writer, r Reader) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return 0, err
	}
	// Version and a count placeholder are not kept in the stream header
	// because the count is unknown up front for generator-backed readers;
	// instead records run to EOF.
	if err := bw.WriteByte(fileVersion); err != nil {
		return 0, err
	}
	var n int64
	buf := make([]Ref, 8192)
	var rec [9]byte
	for {
		k := r.Read(buf)
		if k == 0 {
			break
		}
		for _, ref := range buf[:k] {
			binary.LittleEndian.PutUint64(rec[:8], ref.Addr)
			rec[8] = 0
			if ref.Store {
				rec[8] = 1
			}
			if _, err := bw.Write(rec[:]); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, bw.Flush()
}

// fileReader streams a saved trace.
type fileReader struct {
	br  *bufio.Reader
	err error
}

// Open validates the header of a saved trace and returns a Reader over it.
func Open(r io.Reader) (Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(fileMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(fileMagic)])
	}
	if head[len(fileMagic)] != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(fileMagic)])
	}
	return &fileReader{br: br}, nil
}

// Read implements Reader.
func (f *fileReader) Read(buf []Ref) int {
	if f.err != nil {
		return 0
	}
	n := 0
	var rec [9]byte
	for n < len(buf) {
		if _, err := io.ReadFull(f.br, rec[:]); err != nil {
			f.err = err
			break
		}
		buf[n] = Ref{
			Addr:  binary.LittleEndian.Uint64(rec[:8]),
			Store: rec[8] != 0,
		}
		n++
	}
	return n
}
