// Package trace provides memory-reference traces for the trace-driven
// simulator.
//
// The paper instruments five applications (Modula-3, ld, Atom, Render, gdb)
// with Atom on Digital Unix. We cannot run Atom, so this package generates
// synthetic traces that reproduce the behavioural properties the paper's
// results depend on:
//
//   - trace length and footprint (references and distinct pages touched),
//   - phase structure, which produces the temporal clustering of page
//     faults (Figures 6 and 10) that makes I/O overlap possible,
//   - spatial locality within pages, which produces the +1-dominated
//     next-subpage distance distribution (Figure 7), and
//   - re-reference of earlier regions, which produces capacity misses when
//     the application runs in 1/2 or 1/4 of its memory.
//
// Generators are deterministic: the same App and seed produce the same
// reference stream on every run and platform.
package trace

import "github.com/gms-sim/gmsubpage/internal/rng"

// Ref is one memory reference.
type Ref struct {
	Addr  uint64
	Store bool
}

// Reader streams references in batches. Read fills buf and returns the
// number of references produced; it returns 0 only at end of trace.
type Reader interface {
	Read(buf []Ref) int
}

// Pattern produces the addresses of one access pattern. Implementations
// are advanced by a single goroutine and may keep state.
type Pattern interface {
	// Next returns the next reference of the pattern.
	Next(r *rng.Rand) Ref
}

// Phase is a contiguous section of an application's execution with one
// access pattern, e.g. a compiler pass.
type Phase struct {
	Name    string
	Refs    int64
	Pattern Pattern
}

// App is a synthetic application: an address space plus a sequence of
// phases. Patterns are stateful, so App holds a phase *builder* and every
// reader gets a fresh instance; readers from the same App are independent
// and produce identical streams.
type App struct {
	Name string
	Seed uint64
	// TotalPages is the number of distinct pages the app touches; the
	// "full-mem" configuration of the paper gives the app this many
	// resident pages.
	TotalPages int

	newPhases func() []Phase
	totalRefs int64
}

// NewApp assembles an App from a phase builder. The builder must return
// freshly-constructed patterns on every call.
func NewApp(name string, seed uint64, totalPages int, newPhases func() []Phase) *App {
	a := &App{Name: name, Seed: seed, TotalPages: totalPages, newPhases: newPhases}
	for _, p := range newPhases() {
		a.totalRefs += p.Refs
	}
	return a
}

// TotalRefs returns the length of the trace in references.
func (a *App) TotalRefs() int64 { return a.totalRefs }

// Phases returns a fresh copy of the app's phases.
func (a *App) Phases() []Phase { return a.newPhases() }

// NewReader returns a fresh deterministic reader over the app's trace.
// When the trace cache has (or can admit) this app × scale stream, the
// reader replays the shared memoized copy; otherwise it regenerates from
// the phase generators. Both paths produce the identical stream.
func (a *App) NewReader() Reader {
	if e := cacheFor(a); e.admitted {
		e.refsOnce.Do(func() { e.synthesize(a) })
		if e.packed != nil {
			return &packedReader{refs: e.packed}
		}
	}
	return a.generatorReader()
}

// generatorReader always synthesizes from the phase builders.
func (a *App) generatorReader() Reader {
	return &appReader{phases: a.newPhases(), rand: rng.New(a.Seed)}
}

type appReader struct {
	phases []Phase
	rand   *rng.Rand
	phase  int
	done   int64 // refs produced in current phase
}

func (r *appReader) Read(buf []Ref) int {
	n := 0
	for n < len(buf) {
		if r.phase >= len(r.phases) {
			break
		}
		ph := &r.phases[r.phase]
		if r.done >= ph.Refs {
			r.phase++
			r.done = 0
			continue
		}
		// Fill from the current phase.
		room := int64(len(buf) - n)
		if left := ph.Refs - r.done; left < room {
			room = left
		}
		for i := int64(0); i < room; i++ {
			buf[n] = ph.Pattern.Next(r.rand)
			n++
		}
		r.done += room
	}
	return n
}

// Offset returns a reader that shifts every address by delta. Multi-node
// simulations use it to give each node's workload a disjoint slice of the
// global page space.
func Offset(r Reader, delta uint64) Reader {
	if delta == 0 {
		return r
	}
	return &offsetReader{r: r, delta: delta}
}

type offsetReader struct {
	r     Reader
	delta uint64
}

func (o *offsetReader) Read(buf []Ref) int {
	n := o.r.Read(buf)
	for i := 0; i < n; i++ {
		buf[i].Addr += o.delta
	}
	return n
}

// SliceReader replays a fixed slice of references; used by tests and by the
// trace file loader.
type SliceReader struct {
	Refs []Ref
	pos  int
}

// Read implements Reader.
func (s *SliceReader) Read(buf []Ref) int {
	n := copy(buf, s.Refs[s.pos:])
	s.pos += n
	return n
}
