package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/gms-sim/gmsubpage/internal/rng"
	"github.com/gms-sim/gmsubpage/internal/units"
)

func readAll(r Reader) []Ref {
	var out []Ref
	buf := make([]Ref, 1024)
	for {
		n := r.Read(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestAppReaderDeterministic(t *testing.T) {
	app := Gdb(1.0)
	a := readAll(app.NewReader())
	b := readAll(app.NewReader())
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAppReaderLength(t *testing.T) {
	app := Gdb(1.0)
	got := int64(len(readAll(app.NewReader())))
	if got != app.TotalRefs() {
		t.Fatalf("trace length %d != TotalRefs %d", got, app.TotalRefs())
	}
}

func TestReadSmallBuffers(t *testing.T) {
	// Reading with a tiny buffer must produce the same stream.
	app := Gdb(0.5)
	want := readAll(app.NewReader())
	r := app.NewReader()
	var got []Ref
	buf := make([]Ref, 7)
	for {
		n := r.Read(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestAppFootprints(t *testing.T) {
	// Footprints should be near TotalPages (the nominal full-mem size).
	const scale = 0.12
	for _, app := range Apps(scale) {
		p := ProfileOf(app.NewReader())
		lo := int(float64(app.TotalPages) * 0.7)
		hi := app.TotalPages + 4 // guard pages unused; small overshoot ok
		if p.Pages < lo || p.Pages > hi {
			t.Errorf("%s: footprint %d pages, want within [%d, %d]",
				app.Name, p.Pages, lo, hi)
		}
		if p.Refs != app.TotalRefs() {
			t.Errorf("%s: refs %d != %d", app.Name, p.Refs, app.TotalRefs())
		}
	}
}

func TestPaperScaleParameters(t *testing.T) {
	// At scale 1.0 the apps match the paper's published trace lengths
	// (±15%) and full-memory footprints (±25%).
	want := map[string]struct {
		refs  int64
		pages int
	}{
		"modula3": {87_000_000, 770},
		"ld":      {102_000_000, 6800},
		"atom":    {73_000_000, 1180},
		"render":  {245_000_000, 1430},
		"gdb":     {500_000, 140},
	}
	for _, app := range Apps(1.0) {
		w := want[app.Name]
		refs := app.TotalRefs()
		if refs < w.refs*85/100 || refs > w.refs*115/100 {
			t.Errorf("%s: %d refs, paper has %d", app.Name, refs, w.refs)
		}
		if app.TotalPages < w.pages*75/100 || app.TotalPages > w.pages*125/100 {
			t.Errorf("%s: %d pages, paper has ~%d", app.Name, app.TotalPages, w.pages)
		}
	}
}

func TestSeqPattern(t *testing.T) {
	s := &Seq{Region: Region{Base: 0x10000, Pages: 2}, Stride: 8}
	r := rng.New(1)
	prev := s.Next(r)
	for i := 0; i < 100; i++ {
		cur := s.Next(r)
		if cur.Addr != prev.Addr+8 {
			t.Fatalf("not sequential at %d: %#x after %#x", i, cur.Addr, prev.Addr)
		}
		prev = cur
	}
}

func TestSeqWraps(t *testing.T) {
	reg := Region{Base: 0x1000 * units.PageSize, Pages: 1}
	s := &Seq{Region: reg, Stride: 1024}
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		ref := s.Next(r)
		if ref.Addr < reg.Base || ref.Addr >= reg.End() {
			t.Fatalf("address %#x escaped region", ref.Addr)
		}
	}
}

func TestSeqStores(t *testing.T) {
	s := &Seq{Region: Region{Base: 0, Pages: 1}, StoreEvery: 2}
	r := rng.New(1)
	stores := 0
	for i := 0; i < 100; i++ {
		if s.Next(r).Store {
			stores++
		}
	}
	if stores != 50 {
		t.Fatalf("stores = %d, want 50", stores)
	}
}

func TestWorkingSetStaysInRegion(t *testing.T) {
	f := func(seed uint64, pages uint8) bool {
		reg := Region{Base: 4 * units.PageSize, Pages: int(pages%32) + 1}
		w := &WorkingSet{Region: reg, Skew: 0.7, MeanRun: 8}
		r := rng.New(seed)
		for i := 0; i < 500; i++ {
			ref := w.Next(r)
			if ref.Addr < reg.Base || ref.Addr >= reg.End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepCoversRegion(t *testing.T) {
	reg := Region{Base: 0, Pages: 10}
	s := &Sweep{Region: reg, VisitRefs: 100}
	r := rng.New(1)
	touched := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		touched[s.Next(r).Addr/units.PageSize] = true
	}
	if len(touched) != 10 {
		t.Fatalf("touched %d pages, want 10", len(touched))
	}
}

func TestSweepVisitsProduceRuns(t *testing.T) {
	reg := Region{Base: 0, Pages: 4}
	s := &Sweep{Region: reg, VisitRefs: 50}
	r := rng.New(1)
	var pages []uint64
	for i := 0; i < 200; i++ {
		pages = append(pages, s.Next(r).Addr/units.PageSize)
	}
	// Page changes exactly every 50 refs.
	changes := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] != pages[i-1] {
			changes++
		}
	}
	if changes != 3 {
		t.Fatalf("page changes = %d, want 3", changes)
	}
}

func TestSweepVisitStaysInNeighbourhood(t *testing.T) {
	reg := Region{Base: 0, Pages: 4}
	s := &Sweep{Region: reg, VisitRefs: 500} // more refs than fit in 1 KiB
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		ref := s.Next(r)
		if off := ref.Addr % units.PageSize; off >= 1024 {
			t.Fatalf("first visit escaped its 1 KiB window: offset %d", off)
		}
	}
}

func TestSweepSubsweepsAdvanceWindow(t *testing.T) {
	reg := Region{Base: 0, Pages: 2}
	s := &Sweep{Region: reg, VisitRefs: 10}
	r := rng.New(1)
	// First subsweep: offsets in [0, 1K). Second: [1K, 2K).
	for i := 0; i < 20; i++ {
		if off := s.Next(r).Addr % units.PageSize; off >= 1024 {
			t.Fatalf("subsweep 0 at offset %d", off)
		}
	}
	for i := 0; i < 20; i++ {
		off := s.Next(r).Addr % units.PageSize
		if off < 1024 || off >= 2048 {
			t.Fatalf("subsweep 1 at offset %d", off)
		}
	}
}

func TestSweepReturnsToSamePageMuchLater(t *testing.T) {
	// The gap between two visits to the same page is the whole region:
	// pages x VisitRefs references.
	reg := Region{Base: 0, Pages: 8}
	s := &Sweep{Region: reg, VisitRefs: 16}
	r := rng.New(1)
	lastSeen := map[uint64]int{}
	for i := 0; i < 8*16*3; i++ {
		page := s.Next(r).Addr / units.PageSize
		if prev, ok := lastSeen[page]; ok && i-prev > 1 {
			if gap := i - prev; gap < 8*16-16 {
				t.Fatalf("revisit gap %d too small", gap)
			}
		}
		lastSeen[page] = i
	}
}

func TestMixUsesAllPatterns(t *testing.T) {
	a := &Seq{Region: Region{Base: 0, Pages: 1}}
	b := &Seq{Region: Region{Base: 1 << 30, Pages: 1}}
	m := &Mix{Patterns: []Pattern{a, b}, Weights: []float64{0.5, 0.5}, RunLen: 4}
	r := rng.New(2)
	var fromA, fromB int
	for i := 0; i < 2000; i++ {
		if m.Next(r).Addr < 1<<29 {
			fromA++
		} else {
			fromB++
		}
	}
	if fromA < 500 || fromB < 500 {
		t.Fatalf("unbalanced mix: %d vs %d", fromA, fromB)
	}
}

func TestByName(t *testing.T) {
	if app := ByName("render", 0.1); app == nil || app.Name != "render" {
		t.Fatal("ByName(render) failed")
	}
	if ByName("nope", 0.1) != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}

func TestProfileFirstTouchMonotonic(t *testing.T) {
	p := ProfileOf(Gdb(0.5).NewReader())
	for i := 1; i < len(p.FirstTouch); i++ {
		if p.FirstTouch[i] <= p.FirstTouch[i-1] {
			t.Fatalf("FirstTouch not increasing at %d", i)
		}
	}
	if len(p.FirstTouch) != p.Pages {
		t.Fatalf("FirstTouch has %d entries, Pages = %d", len(p.FirstTouch), p.Pages)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	app := Gdb(0.2)
	want := readAll(app.NewReader())
	var buf bytes.Buffer
	n, err := Write(&buf, app.NewReader())
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("wrote %d records, want %d", n, len(want))
	}
	r, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(r)
	if len(got) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open(bytes.NewBufferString("NOTATRACE")); err == nil {
		t.Fatal("Open should reject bad magic")
	}
	if _, err := Open(bytes.NewBufferString("GM")); err == nil {
		t.Fatal("Open should reject short header")
	}
	if _, err := Open(bytes.NewBufferString("GMSTRACE\xff")); err == nil {
		t.Fatal("Open should reject bad version")
	}
}

func TestSliceReader(t *testing.T) {
	refs := []Ref{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	sr := &SliceReader{Refs: refs}
	buf := make([]Ref, 2)
	if n := sr.Read(buf); n != 2 || buf[0].Addr != 1 {
		t.Fatalf("first read: n=%d", n)
	}
	if n := sr.Read(buf); n != 1 || buf[0].Addr != 3 {
		t.Fatalf("second read: n=%d", n)
	}
	if n := sr.Read(buf); n != 0 {
		t.Fatalf("third read: n=%d", n)
	}
}

func TestRegionsDoNotOverlap(t *testing.T) {
	// All app phases reference disjoint regions per app by construction;
	// verify the allocator leaves gaps.
	var ra regionAllocator
	a := ra.take(10)
	b := ra.take(5)
	if b.Base < a.End() {
		t.Fatalf("regions overlap: %#x < %#x", b.Base, a.End())
	}
}

func BenchmarkAppReader(b *testing.B) {
	app := Modula3(0.05)
	buf := make([]Ref, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := app.NewReader()
		for r.Read(buf) > 0 {
		}
	}
	b.SetBytes(app.TotalRefs())
}

func TestQuickSweepStaysInRegion(t *testing.T) {
	f := func(seed uint64, pages, visit uint8, cross uint8) bool {
		reg := Region{Base: 8 * units.PageSize, Pages: int(pages%16) + 1}
		s := &Sweep{
			Region:    reg,
			VisitRefs: int(visit%64) + 1,
			CrossFrac: float64(cross%100) / 100,
		}
		r := rng.New(seed)
		for i := 0; i < 2000; i++ {
			ref := s.Next(r)
			if ref.Addr < reg.Base || ref.Addr >= reg.End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepCrossFracZeroNeverCrosses(t *testing.T) {
	reg := Region{Base: 0, Pages: 2}
	s := &Sweep{Region: reg, VisitRefs: 64, CrossFrac: 0}
	r := rng.New(1)
	for i := 0; i < 64; i++ { // one full visit: subsweep 0, window [0, 1K)
		if off := s.Next(r).Addr % units.PageSize; off >= 1024 {
			t.Fatalf("CrossFrac=0 visit escaped its window: offset %d", off)
		}
	}
}

func TestSweepCrossFracOneAlwaysSpansTwoWindows(t *testing.T) {
	reg := Region{Base: 0, Pages: 4}
	s := &Sweep{Region: reg, VisitRefs: 64, CrossFrac: 1}
	r := rng.New(1)
	sawSecond := false
	for i := 0; i < 64; i++ {
		if off := s.Next(r).Addr % units.PageSize; off >= 1024 {
			sawSecond = true
		}
	}
	if !sawSecond {
		t.Fatal("dense visit never touched its second window")
	}
}

func TestOffsetReaderZeroDelta(t *testing.T) {
	app := Gdb(0.2)
	r := app.NewReader()
	if Offset(r, 0) != r {
		t.Fatal("zero delta should return the reader unchanged")
	}
}
