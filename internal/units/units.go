// Package units defines the time and size units shared by the simulator,
// the network model and the experiment harness.
//
// The simulator clock counts memory-reference events, as in the paper: one
// event corresponds to one traced memory access and represents 12 ns of
// execution time on the modelled DEC Alpha 250 (about 83,333 events per
// millisecond). Network and disk latencies are specified in nanoseconds and
// converted to events at the simulator boundary.
package units

import "time"

// EventNs is the modelled duration of one memory-reference event in
// nanoseconds (paper §3.2: "average time per trace event ... about 12
// nanoseconds").
const EventNs = 12

// Ticks is a point or span on the simulator clock, measured in
// memory-reference events.
type Ticks int64

// Nanos is a physical duration in nanoseconds. We avoid time.Duration so
// that model arithmetic cannot be confused with wall-clock time.
type Nanos int64

// Common durations.
const (
	Microsecond Nanos = 1_000
	Millisecond Nanos = 1_000_000
	Second      Nanos = 1_000_000_000
)

// EventsPerMs is the number of simulator events in one millisecond.
const EventsPerMs = int64(Millisecond) / EventNs

// ToTicks converts a physical duration to simulator events, rounding up so
// that a nonzero latency never becomes free.
func (n Nanos) ToTicks() Ticks {
	if n <= 0 {
		return 0
	}
	return Ticks((int64(n) + EventNs - 1) / EventNs)
}

// Ms reports the duration in (fractional) milliseconds.
func (n Nanos) Ms() float64 { return float64(n) / float64(Millisecond) }

// Us reports the duration in (fractional) microseconds.
func (n Nanos) Us() float64 { return float64(n) / float64(Microsecond) }

// FromMs builds a duration from fractional milliseconds.
func FromMs(ms float64) Nanos { return Nanos(ms * float64(Millisecond)) }

// FromDuration converts a wall-clock duration into a model duration. This
// and Nanos.Duration are the only blessed crossings between time.Duration
// and the model's unit types; gmslint's unitsafety check flags any other.
func FromDuration(d time.Duration) Nanos { return Nanos(d.Nanoseconds()) }

// Duration converts a model duration to a wall-clock duration, for display
// and for configuring the live prototype from model-derived values.
func (n Nanos) Duration() time.Duration { return time.Duration(n) }

// ToNanos converts simulator events back to physical time.
func (t Ticks) ToNanos() Nanos { return Nanos(int64(t) * EventNs) }

// Ms reports the tick count as modelled milliseconds of execution.
func (t Ticks) Ms() float64 { return t.ToNanos().Ms() }

// Byte sizes used throughout; pages and subpages are powers of two.
const (
	KiB = 1 << 10
	MiB = 1 << 20

	// PageSize is the full page size of the modelled Alpha (8 KB).
	PageSize = 8 * KiB

	// MinSubpage is the granularity of the valid-bit map: the prototype
	// keeps 32 valid bits per 8 KB page, one per 256-byte block.
	MinSubpage = 256

	// ValidBitsPerPage is the number of valid bits kept per full page.
	ValidBitsPerPage = PageSize / MinSubpage
)

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// ValidSubpageSize reports whether s is a legal subpage size: a power of
// two, at least MinSubpage, and at most a full page.
func ValidSubpageSize(s int) bool {
	return IsPow2(s) && s >= MinSubpage && s <= PageSize
}

// SubpagesPerPage returns the number of subpages of size s in a full page.
// It panics if s is not a valid subpage size; sizes are configuration, not
// data, so an invalid size is a programming error.
func SubpagesPerPage(s int) int {
	if !ValidSubpageSize(s) {
		panic("units: invalid subpage size")
	}
	return PageSize / s
}
