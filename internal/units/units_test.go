package units

import (
	"testing"
	"testing/quick"
)

func TestToTicksRoundsUp(t *testing.T) {
	cases := []struct {
		ns   Nanos
		want Ticks
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{11, 1},
		{12, 1},
		{13, 2},
		{24, 2},
		// 1 ms / 12 ns rounds up: 83333.3 -> 83334.
		{Millisecond, Ticks(EventsPerMs) + 1},
	}
	for _, c := range cases {
		if got := c.ns.ToTicks(); got != c.want {
			t.Errorf("ToTicks(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestEventsPerMs(t *testing.T) {
	// The paper rounds to 83,000 events per ms; the exact model value is
	// 1e6/12.
	if EventsPerMs != 83333 {
		t.Fatalf("EventsPerMs = %d, want 83333", EventsPerMs)
	}
}

func TestRoundTripMs(t *testing.T) {
	d := FromMs(1.48)
	if got := d.Ms(); got < 1.4799 || got > 1.4801 {
		t.Fatalf("FromMs/Ms round trip = %v", got)
	}
}

func TestToTicksNeverFree(t *testing.T) {
	f := func(ns int32) bool {
		n := Nanos(ns)
		ticks := n.ToTicks()
		if n > 0 && ticks == 0 {
			return false
		}
		if ticks < 0 {
			return false
		}
		// Converting back never exceeds one event of slack.
		back := ticks.ToNanos()
		return back >= n || n <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidSubpageSize(t *testing.T) {
	valid := []int{256, 512, 1024, 2048, 4096, 8192}
	for _, s := range valid {
		if !ValidSubpageSize(s) {
			t.Errorf("ValidSubpageSize(%d) = false, want true", s)
		}
	}
	invalid := []int{0, -256, 1, 128, 255, 300, 3000, 16384}
	for _, s := range invalid {
		if ValidSubpageSize(s) {
			t.Errorf("ValidSubpageSize(%d) = true, want false", s)
		}
	}
}

func TestSubpagesPerPage(t *testing.T) {
	cases := map[int]int{256: 32, 512: 16, 1024: 8, 2048: 4, 4096: 2, 8192: 1}
	for size, want := range cases {
		if got := SubpagesPerPage(size); got != want {
			t.Errorf("SubpagesPerPage(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestSubpagesPerPagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SubpagesPerPage(100) did not panic")
		}
	}()
	SubpagesPerPage(100)
}
