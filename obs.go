package gmsubpage

import (
	"io"

	"github.com/gms-sim/gmsubpage/internal/obs"
)

// This file exposes the observability layer: a metrics registry the
// prototype components report into (exposed in Prometheus text format,
// optionally over an HTTP debug listener), and the simulator's
// deterministic per-fault tracer.

// Metrics is a registry of counters, gauges and histograms the prototype
// components (client, page server, directory) report into. A nil *Metrics
// disables collection at zero cost.
type Metrics struct{ r *obs.Registry }

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{r: obs.NewRegistry()} }

// WriteText renders every registered metric in Prometheus text exposition
// format, names sorted, so output is stable for diffing and scraping.
func (m *Metrics) WriteText(w io.Writer) error {
	if m == nil {
		return nil
	}
	return m.r.WriteText(w)
}

// registry unwraps m for the internal packages; nil-safe.
func (m *Metrics) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.r
}

// SetMetrics points the directory's gms_dir_* metrics at m.
func (d *Directory) SetMetrics(m *Metrics) { d.d.SetMetrics(m.registry()) }

// SetMetrics points the server's gms_server_* metrics at m.
func (s *PageServer) SetMetrics(m *Metrics) { s.s.SetMetrics(m.registry()) }

// DebugServer is an HTTP listener serving /metrics (Prometheus text),
// /healthz, and the stdlib /debug/pprof endpoints.
type DebugServer struct{ s *obs.DebugServer }

// StartDebug starts a debug listener on addr (use "127.0.0.1:0" for an
// ephemeral port). m may be nil: /metrics then serves an empty exposition.
func StartDebug(addr string, m *Metrics) (*DebugServer, error) {
	s, err := obs.StartDebugServer(addr, m.registry())
	if err != nil {
		return nil, err
	}
	return &DebugServer{s: s}, nil
}

// Addr returns the listener's address.
func (d *DebugServer) Addr() string { return d.s.Addr() }

// Close stops the listener.
func (d *DebugServer) Close() error { return d.s.Close() }

// FaultTrace records the anatomy of every fault of a simulation run —
// issue, restart, follow-on subpage arrivals, stall re-entries — on the
// simulator's deterministic tick clock. The zero value is ready to use;
// attach one via Config.FaultTrace. Tracing never perturbs the simulated
// run, and same-seed runs record byte-identical exports.
type FaultTrace = obs.SimTrace

// NewFaultTrace returns a tracer whose spans are labelled with node in
// multi-trace exports.
func NewFaultTrace(node string) *FaultTrace { return &FaultTrace{Node: node} }

// WriteTraceChrome renders traces as a Chrome trace_event file, loadable
// in chrome://tracing or Perfetto.
func WriteTraceChrome(w io.Writer, traces ...*FaultTrace) error {
	return obs.WriteChromeTrace(w, traces...)
}

// WriteTraceJSONL renders traces as one JSON object per fault span.
func WriteTraceJSONL(w io.Writer, traces ...*FaultTrace) error {
	return obs.WriteJSONL(w, traces...)
}
