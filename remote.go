package gmsubpage

import (
	"time"

	"github.com/gms-sim/gmsubpage/internal/dirlog"
	"github.com/gms-sim/gmsubpage/internal/dirshard"
	"github.com/gms-sim/gmsubpage/internal/proto"
	"github.com/gms-sim/gmsubpage/internal/remote"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// This file exposes the live TCP remote-memory prototype: a directory, a
// page server donating memory, and a faulting client whose page cache
// keeps per-subpage valid bits and fetches with the paper's policies.

// Directory is a running global cache directory.
type Directory struct{ d *remote.Directory }

// StartDirectory starts a directory on addr (use "127.0.0.1:0" for an
// ephemeral port) with the default lease TTL.
func StartDirectory(addr string) (*Directory, error) {
	return StartDirectoryTTL(addr, 0)
}

// StartDirectoryTTL starts a directory whose server registrations expire
// after leaseTTL without a heartbeat (0 selects the default, 30s). A dead
// page server stops being returned by lookups within one TTL.
func StartDirectoryTTL(addr string, leaseTTL time.Duration) (*Directory, error) {
	return StartDirectoryWith(addr, DirectoryOptions{LeaseTTL: leaseTTL})
}

// DirectoryOptions shape a directory, most notably its durability (see
// DESIGN.md §12 and the README's "Durability" section).
type DirectoryOptions struct {
	// LeaseTTL is how long a registration stays visible without a
	// renewing heartbeat (0 = default 30s).
	LeaseTTL time.Duration

	// JournalDir, when non-empty, makes the directory durable: every
	// state transition is appended to a write-ahead journal in this
	// directory and compacted into snapshots, and a restart replays
	// whatever a previous incarnation left there — registrations,
	// seniority and epoch fences all survive a crash. Empty (the
	// default) keeps the classic in-memory directory.
	JournalDir string
	// Fsync is the journal's fsync policy: "always" (every append),
	// "interval" (batched, the default) or "never" (the OS decides).
	Fsync string
	// SnapshotEvery is how many journal records accumulate before the
	// directory writes a compacting snapshot (0 = default).
	SnapshotEvery int
	// RestartGrace is how long recovered leases live before their first
	// post-restart heartbeat must land (0 = one lease TTL; capped at one
	// TTL).
	RestartGrace time.Duration
}

func (o DirectoryOptions) journal() (*dirlog.Options, error) {
	if o.JournalDir == "" {
		return nil, nil
	}
	fsync, err := dirlog.ParseFsync(o.Fsync)
	if err != nil {
		return nil, err
	}
	return &dirlog.Options{Dir: o.JournalDir, Fsync: fsync, SnapshotEvery: o.SnapshotEvery}, nil
}

// StartDirectoryWith starts a directory with full options, including the
// durable journal.
func StartDirectoryWith(addr string, opts DirectoryOptions) (*Directory, error) {
	jopts, err := opts.journal()
	if err != nil {
		return nil, err
	}
	d, err := remote.ListenDirectoryWith(addr, remote.DirectoryConfig{
		LeaseTTL:     opts.LeaseTTL,
		Journal:      jopts,
		RestartGrace: opts.RestartGrace,
	})
	if err != nil {
		return nil, err
	}
	return &Directory{d: d}, nil
}

// StartDirectoryShard starts one shard of a sharded directory deployment:
// the process listens on addr and owns the slice of the page-ID space a
// consistent-hash ring over shardAddrs assigns to index self. Every shard
// of a deployment must be started with the same shardAddrs (in the same
// order) and version. Clients and page servers need no special
// configuration — they bootstrap from any shard, fetch the map, and route
// per page; see the README's "Scale-out" section.
func StartDirectoryShard(addr string, shardAddrs []string, self int, version uint64, leaseTTL time.Duration) (*Directory, error) {
	return StartDirectoryShardWith(addr, shardAddrs, self, version, DirectoryOptions{LeaseTTL: leaseTTL})
}

// StartDirectoryShardWith is StartDirectoryShard with full options. With
// JournalDir set, the shard's journal records its identity (map version
// and self index) and a restart refuses a journal written by a different
// shard.
func StartDirectoryShardWith(addr string, shardAddrs []string, self int, version uint64, opts DirectoryOptions) (*Directory, error) {
	jopts, err := opts.journal()
	if err != nil {
		return nil, err
	}
	d, err := dirshard.StartShard(addr, proto.ShardMap{Version: version, Shards: shardAddrs}, self, dirshard.Config{
		LeaseTTL:     opts.LeaseTTL,
		Journal:      jopts,
		RestartGrace: opts.RestartGrace,
	})
	if err != nil {
		return nil, err
	}
	return &Directory{d: d}, nil
}

// Addr returns the directory's listen address.
func (d *Directory) Addr() string { return d.d.Addr() }

// Pages returns the number of registered pages.
func (d *Directory) Pages() int { return d.d.Len() }

// RecoveredServers reports how many server registrations this directory
// recovered from its journal at startup (0 without a journal, or for a
// fresh one).
func (d *Directory) RecoveredServers() int { return d.d.RecoveredServers() }

// Drain gracefully removes the page server at serverAddr from this
// directory: every page for which it holds the only live copy is copied
// to a surviving server first, then the registration is expunged behind
// an epoch fence so the drained server cannot wander back with a stale
// epoch. It returns the number of pages moved. Clients faulting
// concurrently never observe ErrPageUnavailable for a drained page.
func (d *Directory) Drain(serverAddr string) (int, error) { return d.d.Drain(serverAddr) }

// DrainServer asks the directory at dirAddr (over the wire, the way an
// operator would) to drain the page server at serverAddr; see
// Directory.Drain. Zero timeout selects a default.
func DrainServer(dirAddr, serverAddr string, timeout time.Duration) (int, error) {
	return remote.DrainVia(dirAddr, serverAddr, timeout)
}

// Close stops the directory.
func (d *Directory) Close() error { return d.d.Close() }

// PageServer is a running page server.
type PageServer struct{ s *remote.Server }

// StartServer starts a page server on addr.
func StartServer(addr string) (*PageServer, error) {
	s, err := remote.ListenServer(addr)
	if err != nil {
		return nil, err
	}
	return &PageServer{s: s}, nil
}

// Addr returns the server's listen address.
func (s *PageServer) Addr() string { return s.s.Addr() }

// Store makes the server hold a page of data (copied, zero-padded to
// PageSize).
func (s *PageServer) Store(page uint64, data []byte) { s.s.Store(page, data) }

// StoreRange fills pages [first, first+count) with zero pages, donating
// count*8KB of memory.
func (s *PageServer) StoreRange(first uint64, count int) {
	for i := 0; i < count; i++ {
		s.s.Store(first+uint64(i), nil)
	}
}

// Register announces every stored page to the directory and takes out a
// lease there, renewed by a background heartbeat until Close. The directory
// address is remembered, so a lost lease (expiry, directory restart) heals
// by automatic re-registration. An unreachable directory yields an error
// matching ErrDirectoryUnreachable.
func (s *PageServer) Register(dirAddr string) error { return s.s.RegisterWith(dirAddr) }

// SetHeartbeatInterval overrides the lease-renewal period (default 5s);
// keep it well under the directory's lease TTL.
func (s *PageServer) SetHeartbeatInterval(d time.Duration) { s.s.SetHeartbeatInterval(d) }

// Pages returns the number of stored pages.
func (s *PageServer) Pages() int { return s.s.Pages() }

// SetWireMbps emulates a network link of the given rate (megabits per
// second) by delaying each data fragment for its serialization time; 0
// disables emulation. Loopback TCP is effectively infinitely fast, which
// hides the transfer-size effects the paper measures on its 155 Mb/s ATM.
func (s *PageServer) SetWireMbps(mbps float64) { s.s.SetWireMbps(mbps) }

// Close stops the server.
func (s *PageServer) Close() error { return s.s.Close() }

// ClientOptions shape a remote-memory client.
type ClientOptions struct {
	// CachePages is local memory in pages (default 64).
	CachePages int
	// SubpageSize is the transfer granularity (default 1024).
	SubpageSize int
	// Policy is FullPage, Lazy, Eager, Pipelined or Prefetch (default
	// Eager). Prefetch enables the learned prefetcher: predictions ride
	// the v2 want bitmap over the lazy wire policy, so it needs no wire
	// tag of its own (and is incompatible with WireV1).
	Policy Policy
	// Readahead prefetches the next page during sequential fault runs.
	Readahead bool

	// Resilience knobs (see the "Failure model and resilience" section of
	// the README). The zero value of each picks a sensible default.

	// DialTimeout bounds each directory or server dial (default 1s).
	DialTimeout time.Duration
	// RequestTimeout bounds each lookup RPC and each page-fetch attempt
	// (default 2s); an expired attempt is retried, not hung on.
	RequestTimeout time.Duration
	// MaxRetries bounds retries beyond the first attempt (default 3;
	// negative disables retries). Exhausting the budget fails the access
	// with an error matching ErrPageUnavailable.
	MaxRetries int
	// Hedge, when positive, duplicates a fetch to a replica if the
	// faulted subpage has not arrived after this delay, trading
	// bandwidth for tail latency.
	Hedge time.Duration
	// BreakerThreshold opens a per-server circuit breaker after this many
	// consecutive failed fetch attempts on one server (default 3; negative
	// disables). A tripped server is shunned until a half-open probe
	// succeeds after BreakerCooldown, so a dead node costs one timeout
	// rather than one per fault.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker shuns its server
	// before probing it again (default 1s).
	BreakerCooldown time.Duration

	// WireV1 pins the fault path to the v1 wire protocol for servers that
	// predate the batched TGetPageV2/TSubpageBatch frames. Upgrade order
	// is servers first, then clients (see DESIGN.md §11).
	WireV1 bool

	// Metrics, when non-nil, receives the client's gms_client_* metrics
	// (see the README's Observability section). nil disables collection
	// at zero cost on the fault path.
	Metrics *Metrics
}

// ErrPageUnavailable is matched (via errors.Is) by read and write errors
// when a page cannot be fetched from any replica within the retry budget.
var ErrPageUnavailable = remote.ErrPageUnavailable

// ErrDirectoryUnreachable is matched (via errors.Is) by Register errors
// when the directory cannot be dialed.
var ErrDirectoryUnreachable = remote.ErrDirectoryUnreachable

// Client is a faulting node using remote memory through the directory.
type Client struct{ c *remote.Client }

// DialClient connects a client to the directory at dirAddr.
func DialClient(dirAddr string, opts ClientOptions) (*Client, error) {
	var wire uint8
	prefetch := opts.Policy == Prefetch
	if !prefetch {
		var err error
		if wire, err = proto.PolicyByte(string(opts.Policy)); err != nil {
			return nil, err
		}
	}
	c, err := remote.Dial(remote.ClientConfig{
		Directory:        dirAddr,
		CachePages:       opts.CachePages,
		SubpageSize:      opts.SubpageSize,
		Policy:           wire,
		Prefetch:         prefetch,
		Readahead:        opts.Readahead,
		DialTimeout:      opts.DialTimeout,
		RequestTimeout:   opts.RequestTimeout,
		MaxRetries:       opts.MaxRetries,
		Hedge:            opts.Hedge,
		BreakerThreshold: opts.BreakerThreshold,
		BreakerCooldown:  opts.BreakerCooldown,
		WireV1:           opts.WireV1,
		Metrics:          opts.Metrics.registry(),
	})
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Read fills buf from the global address addr, faulting in missing
// subpages over the network.
func (c *Client) Read(buf []byte, addr uint64) error { return c.c.Read(buf, addr) }

// Write stores buf at the global address addr; dirty pages are written
// back to their server on eviction.
func (c *Client) Write(buf []byte, addr uint64) error { return c.c.Write(buf, addr) }

// ClientStats snapshots a client's counters.
type ClientStats struct {
	Faults     int64
	Prefetches int64
	Evictions  int64
	PutPages   int64
	BytesIn    int64
	// Resilience counters: attempts beyond the first, retries that moved
	// to a different replica, and hedged duplicate fetches.
	Retries   int64
	Failovers int64
	Hedges    int64
	// Circuit-breaker state: trips (closed->open), half-open probes
	// granted, and servers currently shunned.
	BreakerOpens  int64
	BreakerProbes int64
	OpenBreakers  int
	// Sharded-directory counters: lookups bounced by a shard that did not
	// own the page, and shard-map installs (bootstrap fetch plus every
	// newer map learned from a bounce).
	WrongShard   int64
	MapRefreshes int64
	// Median fault-to-subpage-arrival and fault-to-complete-page times.
	SubpageLatencyUs float64
	FullLatencyUs    float64
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	st := c.c.Stats()
	return ClientStats{
		Faults:           st.Faults,
		Prefetches:       st.Prefetches,
		Evictions:        st.Evictions,
		PutPages:         st.PutPages,
		BytesIn:          st.BytesIn,
		Retries:          st.Retries,
		Failovers:        st.Failovers,
		Hedges:           st.Hedges,
		BreakerOpens:     st.BreakerOpens,
		BreakerProbes:    st.BreakerProbes,
		OpenBreakers:     st.OpenBreakers,
		WrongShard:       st.WrongShard,
		MapRefreshes:     st.MapRefreshes,
		SubpageLatencyUs: st.SubpageLat.Median(),
		FullLatencyUs:    st.FullLat.Median(),
	}
}

// Close tears the client down.
func (c *Client) Close() error { return c.c.Close() }

// Pager views a region of remote memory through io.ReaderAt /
// io.WriterAt, so remote memory can back anything that reads and writes at
// offsets (archive readers, index files, mmap-style accessors).
type Pager struct{ p *remote.Pager }

// NewPager views size bytes of remote memory starting at global address
// base.
func (c *Client) NewPager(base uint64, size int64) (*Pager, error) {
	p, err := c.c.NewPager(base, size)
	if err != nil {
		return nil, err
	}
	return &Pager{p: p}, nil
}

// Size returns the pager's extent in bytes.
func (p *Pager) Size() int64 { return p.p.Size() }

// ReadAt implements io.ReaderAt over remote memory.
func (p *Pager) ReadAt(b []byte, off int64) (int, error) { return p.p.ReadAt(b, off) }

// WriteAt implements io.WriterAt over remote memory.
func (p *Pager) WriteAt(b []byte, off int64) (int, error) { return p.p.WriteAt(b, off) }

// Compile-time check that PageSize stays consistent with the internal
// definition the wire protocol assumes.
var _ = [1]struct{}{}[PageSize-units.PageSize]
