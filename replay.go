package gmsubpage

import (
	"fmt"
	"time"

	"github.com/gms-sim/gmsubpage/internal/trace"
	"github.com/gms-sim/gmsubpage/internal/units"
)

// This file connects the paper's workloads to the live prototype: a
// client replays a synthetic application's reference stream against real
// remote memory over TCP, page-compacting the sparse trace addresses onto
// the dense page range the servers donate.

// WorkloadPages returns the number of 8 KB pages the named workload
// touches at the given scale — how much memory the cluster must donate
// before ReplayWorkload can run it.
func WorkloadPages(workload string, scale float64) (int, error) {
	if scale == 0 {
		scale = 0.25
	}
	app := trace.ByName(workload, scale)
	if app == nil {
		return 0, fmt.Errorf("gmsubpage: unknown workload %q (have %v)", workload, Workloads())
	}
	return app.TotalPages, nil
}

// ReplayReport summarizes a live workload replay.
type ReplayReport struct {
	Workload string
	Refs     int64
	Elapsed  time.Duration

	// Client counters accumulated during the replay.
	Faults           int64
	Prefetches       int64
	Evictions        int64
	BytesIn          int64
	SubpageLatencyUs float64
	FullLatencyUs    float64
}

// FaultsPerSecond reports the achieved fault service rate.
func (r *ReplayReport) FaultsPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Faults) / r.Elapsed.Seconds()
}

// ReplayWorkload drives the client with the named workload's memory
// references: every load and store becomes a Read or Write against remote
// memory. Trace pages are assigned dense page numbers starting at
// firstPage in first-touch order, so a cluster donating
// [firstPage, firstPage+WorkloadPages) can back the whole run.
func (c *Client) ReplayWorkload(workload string, scale float64, firstPage uint64) (*ReplayReport, error) {
	if scale == 0 {
		scale = 0.25
	}
	app := trace.ByName(workload, scale)
	if app == nil {
		return nil, fmt.Errorf("gmsubpage: unknown workload %q (have %v)", workload, Workloads())
	}
	before := c.Stats()
	start := time.Now() //lint:allow simpurity live replay measures the real prototype, so wall-clock elapsed time is the result

	pageMap := make(map[uint64]uint64, app.TotalPages)
	nextPage := firstPage
	rd := app.NewReader()
	buf := make([]trace.Ref, 8192)
	var refs int64
	var word [8]byte
	for {
		n := rd.Read(buf)
		if n == 0 {
			break
		}
		for _, ref := range buf[:n] {
			tracePage := ref.Addr / units.PageSize
			dense, ok := pageMap[tracePage]
			if !ok {
				dense = nextPage
				pageMap[tracePage] = dense
				nextPage++
			}
			// Clamp so an 8-byte access never crosses the page.
			off := ref.Addr % units.PageSize
			if off > units.PageSize-8 {
				off = units.PageSize - 8
			}
			addr := dense*units.PageSize + off
			var err error
			if ref.Store {
				err = c.Write(word[:], addr)
			} else {
				err = c.Read(word[:], addr)
			}
			if err != nil {
				return nil, fmt.Errorf("gmsubpage: replay %s at ref %d: %w",
					workload, refs, err)
			}
			refs++
		}
	}
	after := c.Stats()
	return &ReplayReport{
		Workload:         workload,
		Refs:             refs,
		Elapsed:          time.Since(start), //lint:allow simpurity wall-clock elapsed time of the live run is the reported measurement
		Faults:           after.Faults - before.Faults,
		Prefetches:       after.Prefetches - before.Prefetches,
		Evictions:        after.Evictions - before.Evictions,
		BytesIn:          after.BytesIn - before.BytesIn,
		SubpageLatencyUs: after.SubpageLatencyUs,
		FullLatencyUs:    after.FullLatencyUs,
	}, nil
}
